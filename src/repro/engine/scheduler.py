"""DAG scheduler and task scheduler.

The :class:`DAGScheduler` turns an action into a :class:`StageGraph`,
executes stages whose parents' shuffle outputs are available, and handles
shuffle-fetch failures by letting the missing map partitions be recomputed
(Spark's stage-resubmission path).  The :class:`TaskScheduler` places task
attempts on alive executors (locality-aware), retries transient failures up
to ``max_task_retries``, and converts executor loss into block/shuffle
invalidation plus rescheduling.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import itertools
import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.engine.accumulator import AccumulatorBuffer
from repro.engine.blockmanager import estimate_size
from repro.engine.closure import dumps as closure_dumps
from repro.engine.dag import Stage, StageGraph
from repro.engine.dependencies import ShuffleDependency
from repro.engine.executor import Executor, ExecutorLostError
from repro.engine.listener import (
    ExecutorLost,
    JobEnd,
    JobStart,
    SpeculativeTaskLaunched,
    StageCompleted,
    StageSubmitted,
    TaskEnd,
    TaskStart,
)
from repro.engine.metrics import JobMetrics, StageMetrics, TaskRecord
from repro.engine.profiler import profile_call, should_profile
from repro.engine.serializer import FrameBatch, compress_blob
from repro.engine.shuffle import FetchFailedError
from repro.engine.storage import StorageLevel
from repro.engine.task import (
    ResultTask,
    ShuffleMapTask,
    Task,
    TaskBinary,
    TaskContext,
    TaskTelemetry,
)
from repro.obs.logging import LogRecord, get_logger, log_context

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.context import Context
    from repro.engine.rdd import RDD

log = get_logger("repro.scheduler")


class JobFailedError(RuntimeError):
    """The job could not complete within the configured retry budgets."""


class _FetchFailedSignal(Exception):
    """Internal: a reduce task hit a missing map output; resubmit parents."""

    def __init__(self, shuffle_id: int, map_partition: int) -> None:
        super().__init__(f"fetch failed: shuffle {shuffle_id} map {map_partition}")
        self.shuffle_id = shuffle_id
        self.map_partition = map_partition


class _SpeculationLost(Exception):
    """Internal: this attempt lost the first-result-wins race.

    Raised *before* any driver-side state was merged, so the attempt is
    discarded without a retry, a failure count, or a TaskEnd."""

    def __init__(self, partition: int, attempt: int) -> None:
        super().__init__(f"partition {partition} attempt {attempt} lost the race")
        self.partition = partition
        self.attempt = attempt


class _TaskSetCommits:
    """First-result-wins commit claims for one task set.

    Accumulator merges already dedup by (stage, partition), but registry
    deltas, worker log replays, and telemetry observations do not -- so a
    task attempt must win the claim for its partition *before* any of its
    side effects are folded into driver state.  Exactly one attempt per
    partition ever commits."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._claimed: dict[int, int] = {}

    def try_claim(self, partition: int, attempt: int) -> bool:
        with self._lock:
            if partition in self._claimed:
                return False
            self._claimed[partition] = attempt
            return True


@dataclass
class _Attempt:
    """One in-flight task attempt as tracked by ``run_task_set``."""

    task: "Task"
    attempt: int
    executor: Executor
    launched: float
    speculative: bool = False


def _cancel_attempt(future: concurrent.futures.Future) -> None:
    """Cancel a scheduler future and its chained backend future, if any."""
    future.cancel()
    pool_future = getattr(future, "_pool_future", None)
    if pool_future is not None:
        pool_future.cancel()


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def stage_shuffle_inputs(rdd: "RDD", split: int) -> set[tuple[int, int]]:
    """(shuffle_id, reduce_partition) pairs read by this task's stage slice."""
    out: set[tuple[int, int]] = set()
    seen: set[tuple[int, int]] = set()

    def visit(node: "RDD", s: int) -> None:
        if (node.id, s) in seen:
            return
        seen.add((node.id, s))
        for dep in node.dependencies:
            if isinstance(dep, ShuffleDependency):
                out.add((dep.shuffle_id, s))
            else:
                for parent_split in dep.parents(s):
                    visit(dep.rdd, parent_split)

    visit(rdd, split)
    return out


def stage_cached_rdd_blocks(rdd: "RDD", split: int) -> set[tuple[int, int]]:
    """(rdd_id, partition) block ids of persisted RDDs in this task's slice."""
    out: set[tuple[int, int]] = set()
    seen: set[tuple[int, int]] = set()

    def visit(node: "RDD", s: int) -> None:
        if (node.id, s) in seen:
            return
        seen.add((node.id, s))
        if node.is_cached:
            out.add((node.id, s))
        for dep in node.dependencies:
            if isinstance(dep, ShuffleDependency):
                continue
            for parent_split in dep.parents(s):
                visit(dep.rdd, parent_split)

    visit(rdd, split)
    return out


@dataclass
class _SerializedTaskBinary:
    """A stage's pickled :class:`TaskBinary` plus driver-side lookup state.

    ``blob`` is the zlib-framed (see
    :func:`repro.engine.serializer.compress_blob`) pickle of the binary.
    When a transport is available and the blob is large, it is published
    once (content-hash dedup'd) and tasks ship only ``ref``; the
    ``shipped_executors`` set drives the ``task_binary_bytes`` accounting
    -- an executor is charged the full blob the first time it sees the
    binary and only the ref's bytes afterwards.
    """

    #: SHA-256 of ``blob``: content identity, not a per-context sequence
    #: number, so persistent executors recognize a binary they already hold
    #: even when it was built by an earlier (dead) Context
    binary_id: str
    blob: bytes
    #: uncompressed pickled size, for compression accounting
    raw_len: int
    #: requested StorageLevel per cached rdd id (for merging remote blocks)
    storage_levels: dict[int, StorageLevel]
    #: transport handle when the blob travels out-of-band
    ref: Any = None
    #: pickled size of ``ref`` (the per-task cost once dedup'd)
    ref_cost: int = 0
    shipped_executors: set = field(default_factory=set)


class TaskScheduler:
    """Runs one stage's task set with retries and executor management."""

    def __init__(self, ctx: "Context") -> None:
        self.ctx = ctx
        self._round_robin = itertools.count()
        self._lock = threading.Lock()

    # -- placement ------------------------------------------------------------

    def _alive_executors(self) -> list[Executor]:
        return [e for e in self.ctx.executors if e.alive]

    def _choose_executor(self, task: Task, exclude: set[str]) -> Executor:
        alive = [e for e in self._alive_executors() if e.executor_id not in exclude]
        if not alive:
            alive = self._alive_executors()
        if not alive:
            raise JobFailedError("no alive executors remain")
        # 1) prefer executors already holding this partition's cached block
        if task.rdd.is_cached:
            holders = set(self.ctx.block_master.locations((task.rdd.id, task.partition)))
            for executor in alive:
                if executor.executor_id in holders:
                    return executor
        # 2) honor RDD-provided locality hints (HDFS block locations)
        preferred = set(task.preferred_locations())
        if preferred:
            for executor in alive:
                if executor.executor_id in preferred or executor.host in preferred:
                    return executor
        # 3) persistent backends get *stable* placement: partition -> same
        # executor across jobs, so a rerun hits the executor whose caches
        # already hold that partition's binary and broadcasts
        if getattr(self.ctx.backend, "stable_placement", False):
            return alive[task.partition % len(alive)]
        # 4) round robin
        with self._lock:
            index = next(self._round_robin)
        return alive[index % len(alive)]

    # -- execution ---------------------------------------------------------------

    def run_task_set(
        self,
        stage: Stage,
        tasks: list[Task],
        job: JobMetrics,
        stage_metrics: StageMetrics,
    ) -> dict[int, Any]:
        """Run all tasks; returns {partition: result}.

        Raises :class:`_FetchFailedSignal` on an unrecoverable-in-stage fetch
        failure and :class:`JobFailedError` when retry budgets are exhausted.
        """
        config = self.ctx.config
        backend = self.ctx.backend
        results: dict[int, Any] = {}
        # FIFO: partition 0 launches first, so locality/straggler traces
        # read in partition order
        pending: deque[tuple[Task, int, set[str]]] = deque((t, 0, set()) for t in tasks)
        inflight: dict[concurrent.futures.Future, _Attempt] = {}
        max_inflight = max(1, backend.parallelism) * 2
        fetch_failure: _FetchFailedSignal | None = None
        task_binary: _SerializedTaskBinary | None = None
        if tasks and not backend.supports_shared_state:
            task_binary = self._build_task_binary(stage, tasks[0])

        planner = getattr(self.ctx, "adaptive", None)
        commits = _TaskSetCommits()
        policy = planner.speculation if planner is not None else None
        if policy is not None and (backend.parallelism <= 1 or len(tasks) < 2):
            # a twin can't overlap its original without spare slots
            policy = None
        completed_durations: list[float] = []
        speculated: set[int] = set()
        # serializer probe: run the stage's first map task alone, pick a
        # per-shuffle serializer from its registered frames, then open the
        # gate for the rest
        probe_gate = planner is not None and planner.wants_serializer_probe(stage)
        launch_limit = 1 if probe_gate else max_inflight

        hub = getattr(self.ctx, "heartbeats", None)
        # with an active timeout monitor, wake up periodically to check for
        # lost executors instead of blocking until some future completes
        wait_timeout = None
        if hub is not None and hub.timeout > 0:
            wait_timeout = max(hub.interval, 0.01)
        if policy is not None:
            # straggler checks need a clock even when nothing completes
            spec_tick = max(policy.min_runtime / 4, 0.01)
            wait_timeout = spec_tick if wait_timeout is None else min(wait_timeout, spec_tick)

        while pending or inflight:
            while pending and len(inflight) < launch_limit and fetch_failure is None:
                task, attempt, tried = pending.popleft()
                executor = self._choose_executor(task, exclude=tried)
                self.ctx.listener_bus.post(
                    TaskStart(stage.id, task.partition, attempt, executor.executor_id)
                )
                future = self._submit(
                    stage, task, attempt, executor, task_binary, job, commits
                )
                inflight[future] = _Attempt(task, attempt, executor, time.perf_counter())
            if not inflight:
                break
            done, _ = concurrent.futures.wait(
                inflight,
                timeout=wait_timeout,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            if hub is not None:
                for executor_id in hub.take_timed_out():
                    self._reschedule_lost_executor(
                        executor_id, stage, inflight, pending, done, results, job, config
                    )
            for future in done:
                att = inflight.pop(future, None)
                if att is None:
                    # a race winner already cancelled this sibling attempt
                    continue
                task, attempt, executor = att.task, att.attempt, att.executor
                try:
                    value, record = future.result()
                except (concurrent.futures.CancelledError, _SpeculationLost):
                    # first-result-wins: this attempt lost its speculation
                    # race (or was cancelled after the winner committed);
                    # nothing was merged, so nothing needs retrying
                    log.debug(
                        "attempt lost speculation race; discarded",
                        job_id=job.job_id, stage_id=stage.id,
                        partition=task.partition, attempt=attempt,
                        executor_id=executor.executor_id,
                    )
                except FetchFailedError as exc:
                    executor.note_task(False, trace_id=getattr(self.ctx, "trace_id", None))
                    job.num_task_failures += 1
                    self._post_failed_task(stage, task, attempt, executor, exc)
                    log.warning(
                        "shuffle fetch failed; stage will be resubmitted",
                        job_id=job.job_id, stage_id=stage.id,
                        partition=task.partition, attempt=attempt,
                        executor_id=executor.executor_id,
                        shuffle_id=exc.shuffle_id, map_partition=exc.map_partition,
                    )
                    if fetch_failure is None:
                        fetch_failure = _FetchFailedSignal(exc.shuffle_id, exc.map_partition)
                except ExecutorLostError as exc:
                    executor.note_task(False, trace_id=getattr(self.ctx, "trace_id", None))
                    job.num_task_failures += 1
                    self._post_failed_task(stage, task, attempt, executor, exc)
                    log.warning(
                        "task lost its executor; retrying elsewhere",
                        job_id=job.job_id, stage_id=stage.id,
                        partition=task.partition, attempt=attempt,
                        executor_id=exc.executor_id,
                    )
                    self._handle_executor_loss(exc.executor_id, job)
                    if self._partition_satisfied(task.partition, results, inflight):
                        continue
                    if attempt + 1 > config.max_task_retries:
                        raise JobFailedError(
                            f"task (stage={stage.id}, partition={task.partition}) "
                            f"exceeded {config.max_task_retries} retries"
                        ) from exc
                    pending.append((task, attempt + 1, set()))
                except Exception as exc:  # transient / injected task failure
                    executor.note_task(False, trace_id=getattr(self.ctx, "trace_id", None))
                    job.num_task_failures += 1
                    record = TaskRecord(
                        stage_id=stage.id,
                        partition=task.partition,
                        attempt=attempt,
                        executor_id=executor.executor_id,
                        duration_seconds=0.0,
                        metrics=TaskContext(stage.id, task.partition, attempt, executor.executor_id).metrics,
                        succeeded=False,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    stage_metrics.tasks.append(record)
                    self.ctx.listener_bus.post(TaskEnd(record))
                    log.warning(
                        "task attempt failed",
                        job_id=job.job_id, stage_id=stage.id,
                        partition=task.partition, attempt=attempt,
                        executor_id=executor.executor_id,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    if self._partition_satisfied(task.partition, results, inflight):
                        continue
                    if attempt + 1 > config.max_task_retries:
                        raise JobFailedError(
                            f"task (stage={stage.id}, partition={task.partition}) failed "
                            f"permanently after {attempt + 1} attempts: {exc}"
                        ) from exc
                    tried = set(tried) | {executor.executor_id}
                    pending.append((task, attempt + 1, tried))
                else:
                    executor.note_task(True, trace_id=getattr(self.ctx, "trace_id", None))
                    if att.speculative:
                        record.speculative = True
                        if planner is not None:
                            planner.note_speculation_won()
                    results[task.partition] = value
                    completed_durations.append(record.duration_seconds)
                    # first result won: cancel the losing sibling attempts
                    for sib_future, sib in list(inflight.items()):
                        if sib.task.partition == task.partition:
                            del inflight[sib_future]
                            _cancel_attempt(sib_future)
                    if isinstance(task, ResultTask):
                        record.metrics.driver_bytes_collected += estimate_size(value)
                    stage_metrics.tasks.append(record)
                    self.ctx.listener_bus.post(TaskEnd(record))
                    if probe_gate:
                        # the probe map output is registered; pick the
                        # shuffle's serializer before the rest launch
                        probe_gate = False
                        launch_limit = max_inflight
                        planner.choose_serializer(stage, job.job_id)
                    log.debug(
                        "task finished",
                        job_id=job.job_id, stage_id=stage.id,
                        partition=task.partition, attempt=attempt,
                        executor_id=executor.executor_id,
                        duration_seconds=round(record.duration_seconds, 6),
                    )
            if policy is not None and fetch_failure is None:
                self._maybe_speculate(
                    stage, job, inflight, results, speculated,
                    completed_durations, len(tasks), policy, planner,
                    task_binary, commits,
                )
        if fetch_failure is not None:
            raise fetch_failure
        return results

    @staticmethod
    def _partition_satisfied(
        partition: int, results: dict[int, Any], inflight: dict
    ) -> bool:
        """A failed attempt needs no retry if a sibling covers its partition."""
        if partition in results:
            return True
        return any(att.task.partition == partition for att in inflight.values())

    def _choose_speculative_executor(self, att: _Attempt) -> Executor:
        """Warm placement for a twin: prefer an idle executor that is not
        running the straggling original; fall back to any alive executor."""
        original = att.executor.executor_id
        alive = self._alive_executors()
        if not alive:
            raise JobFailedError("no alive executors remain")
        others = [e for e in alive if e.executor_id != original]
        hub = getattr(self.ctx, "heartbeats", None)
        if hub is not None and others:
            idle = hub.idle_executors()
            warm = [e for e in others if e.executor_id in idle]
            if warm:
                return warm[att.task.partition % len(warm)]
        if others:
            return others[att.task.partition % len(others)]
        return alive[0]

    def _maybe_speculate(
        self,
        stage: Stage,
        job: JobMetrics,
        inflight: dict,
        results: dict[int, Any],
        speculated: set[int],
        completed_durations: list[float],
        total_tasks: int,
        policy: Any,
        planner: Any,
        task_binary: "_SerializedTaskBinary | None",
        commits: _TaskSetCommits,
    ) -> None:
        """Launch duplicate attempts for stragglers (first result wins)."""
        if not policy.ready(len(completed_durations), total_tasks):
            return
        threshold = policy.threshold(completed_durations)
        median = _median(completed_durations)
        now = time.perf_counter()
        for att in list(inflight.values()):
            partition = att.task.partition
            if att.speculative or partition in speculated or partition in results:
                continue
            elapsed = now - att.launched
            if elapsed < threshold:
                continue
            twin_executor = self._choose_speculative_executor(att)
            speculated.add(partition)
            self.ctx.listener_bus.post(SpeculativeTaskLaunched(
                stage.id, job.job_id, partition,
                att.executor.executor_id, twin_executor.executor_id,
                elapsed, median,
            ))
            self.ctx.listener_bus.post(TaskStart(
                stage.id, partition, att.attempt + 1, twin_executor.executor_id
            ))
            if planner is not None:
                planner.note_speculation_launched()
            log.info(
                "speculative attempt launched",
                job_id=job.job_id, stage_id=stage.id, partition=partition,
                original_executor=att.executor.executor_id,
                speculative_executor=twin_executor.executor_id,
                elapsed_seconds=round(elapsed, 6),
                median_seconds=round(median, 6),
            )
            twin = self._submit(
                stage, att.task, att.attempt + 1, twin_executor, task_binary,
                job, commits, speculative=True,
            )
            inflight[twin] = _Attempt(
                att.task, att.attempt + 1, twin_executor, now, speculative=True
            )

    def _reschedule_lost_executor(
        self,
        executor_id: str,
        stage: Stage,
        inflight: dict,
        pending: deque,
        done: set,
        results: dict[int, Any],
        job: JobMetrics,
        config: Any,
    ) -> None:
        """Heartbeat timeout: declare the executor lost, retry its tasks.

        In-flight attempts on the lost executor are abandoned -- their
        futures are dropped from the wait set and any late result is
        discarded safely (accumulator merges dedup by (stage, partition);
        late shuffle/block merges are idempotent) -- and each task is
        requeued on a healthy executor, excluding the lost one.  A lost
        attempt whose partition is already covered by a completed result or
        a surviving sibling attempt (speculation) is simply dropped.
        """
        self._handle_executor_loss(executor_id, job)
        log.warning(
            "executor heartbeat timeout; rescheduling its in-flight tasks",
            job_id=job.job_id, stage_id=stage.id, executor_id=executor_id,
        )
        abandoned = [
            future
            for future, att in inflight.items()
            if att.executor.executor_id == executor_id and future not in done
        ]
        for future in abandoned:
            att = inflight.pop(future)
            _cancel_attempt(future)  # no-op if already running; drops queued attempts
            att.executor.note_task(False, trace_id=getattr(self.ctx, "trace_id", None))
            job.num_task_failures += 1
            exc = ExecutorLostError(executor_id)
            self._post_failed_task(stage, att.task, att.attempt, att.executor, exc)
            if self._partition_satisfied(att.task.partition, results, inflight):
                continue
            if att.attempt + 1 > config.max_task_retries:
                raise JobFailedError(
                    f"task (stage={stage.id}, partition={att.task.partition}) "
                    f"exceeded {config.max_task_retries} retries "
                    f"(executor {executor_id} heartbeat timeout)"
                ) from exc
            pending.append((att.task, att.attempt + 1, {executor_id}))

    def _post_failed_task(
        self, stage: Stage, task: Task, attempt: int, executor: Executor, exc: Exception
    ) -> None:
        """Publish a TaskEnd for failure paths that record no TaskRecord."""
        from repro.engine.metrics import TaskMetrics

        self.ctx.listener_bus.post(TaskEnd(TaskRecord(
            stage_id=stage.id,
            partition=task.partition,
            attempt=attempt,
            executor_id=executor.executor_id,
            duration_seconds=0.0,
            metrics=TaskMetrics(),
            succeeded=False,
            error=f"{type(exc).__name__}: {exc}",
        )))

    def _submit(
        self,
        stage: Stage,
        task: Task,
        attempt: int,
        executor: Executor,
        task_binary: _SerializedTaskBinary | None,
        job: JobMetrics,
        commits: _TaskSetCommits | None = None,
        speculative: bool = False,
    ) -> concurrent.futures.Future:
        backend = self.ctx.backend
        if backend.supports_shared_state:
            return backend.submit(
                self._run_shared, stage, task, attempt, executor, job.job_id,
                commits, speculative,
            )
        assert task_binary is not None
        return self._submit_process(
            stage, task, attempt, executor, task_binary, job, commits, speculative
        )

    # -- shared-state execution (serial / threads) -----------------------------

    def _run_shared(
        self,
        stage: Stage,
        task: Task,
        attempt: int,
        executor: Executor,
        job_id: int,
        commits: _TaskSetCommits | None = None,
        speculative: bool = False,
    ) -> tuple[Any, TaskRecord]:
        if not executor.alive:
            raise ExecutorLostError(executor.executor_id)
        injector = self.ctx.fault_injector
        tc = TaskContext(
            stage_id=stage.id,
            partition=task.partition,
            attempt=attempt,
            executor_id=executor.executor_id,
            shuffle_manager=self.ctx.shuffle_manager,
            block_manager=executor.block_manager,
            block_master=self.ctx.block_master,
            accumulators=AccumulatorBuffer(self.ctx._accumulators),
            fault_hook=injector.on_task_launch if injector is not None else None,
            speculative=speculative,
        )
        hub = getattr(self.ctx, "heartbeats", None)
        if hub is not None:
            hub.attach_context(
                executor.executor_id, (stage.id, task.partition, attempt), tc
            )
        telemetry = TaskTelemetry()
        profiled = should_profile(
            self.ctx.config.profile_fraction, stage.id, task.partition
        )
        start = time.perf_counter()
        # ambient correlation: anything logged inside the task (engine or
        # user code) carries the full id set without plumbing
        with log_context(
            job_id=job_id, stage_id=stage.id, partition=task.partition,
            attempt=attempt, executor_id=executor.executor_id,
        ):
            if profiled:
                value, hotspots = profile_call(
                    lambda: task.run(tc), self.ctx.config.profile_top_n
                )
            else:
                value, hotspots = task.run(tc), None
        duration = time.perf_counter() - start
        if commits is not None and not commits.try_claim(task.partition, attempt):
            # a speculative sibling committed first; discard this attempt
            # before any non-idempotent driver-state merge below
            raise _SpeculationLost(task.partition, attempt)
        telemetry.record(tc.metrics)
        from repro.core.instrumentation import observe_worker_task

        kind = "shuffle_map" if isinstance(task, ShuffleMapTask) else "result"
        observe_worker_task(kind, duration, tc.metrics.gc_pause_seconds)
        tc.accumulators.merge_into_driver(stage.id, task.partition)
        record = TaskRecord(
            stage_id=stage.id,
            partition=task.partition,
            attempt=attempt,
            executor_id=executor.executor_id,
            duration_seconds=duration,
            metrics=tc.metrics,
            succeeded=True,
            start_time=start,
            profile=hotspots,
        )
        return value, record

    # -- process-backend execution ------------------------------------------------

    def _build_task_binary(self, stage: Stage, probe: Task) -> _SerializedTaskBinary:
        """Serialize the stage's closure/lineage once for all its tasks."""
        levels = {
            node.id: node.storage_level
            for node in stage.rdd.lineage()
            if node.is_cached
        }
        if isinstance(probe, ShuffleMapTask):
            binary = TaskBinary(
                stage.id, "shuffle_map", stage.rdd,
                func=None, shuffle_dep=probe.shuffle_dep,
                accumulators=self.ctx._accumulators, storage_levels=levels,
            )
        else:
            binary = TaskBinary(
                stage.id, "result", stage.rdd,
                func=probe.func, shuffle_dep=None,
                accumulators=self.ctx._accumulators, storage_levels=levels,
            )
        # closure-aware pickling: lambdas and locally-defined functions in
        # the lineage serialize by value (repro.engine.closure)
        raw = closure_dumps(binary)
        blob = compress_blob(raw)
        tb = _SerializedTaskBinary(
            hashlib.sha256(blob).hexdigest(), blob, len(raw), levels
        )
        transport = getattr(self.ctx, "transport", None)
        # persistent backends publish every binary by ref regardless of
        # size: workers that evicted the binary can re-fetch it from the
        # long-lived transport, and the content-hash dedup makes job 2's
        # publication a no-op (transport_dedup_hits instead of bytes)
        threshold = (
            0
            if getattr(self.ctx.backend, "persistent_executors", False)
            else self.ctx.config.transport_min_bytes
        )
        if transport is not None and len(blob) >= threshold:
            tb.ref = transport.put(blob, dedup=True)
            tb.ref_cost = len(pickle.dumps(tb.ref, protocol=pickle.HIGHEST_PROTOCOL))
        return tb

    def _submit_process(
        self,
        stage: Stage,
        task: Task,
        attempt: int,
        executor: Executor,
        tb: _SerializedTaskBinary,
        job: JobMetrics,
        commits: _TaskSetCommits | None = None,
        speculative: bool = False,
    ) -> concurrent.futures.Future:
        """Dispatch one attempt to the process pool without blocking.

        The returned future resolves to ``(value, TaskRecord)`` once the
        worker finishes *and* the driver-side merge (shuffle output, cache
        blocks, accumulators) has run in the pool's completion callback, so
        ``run_task_set`` keeps ``max_inflight`` attempts genuinely parallel.
        """
        out_future: concurrent.futures.Future = concurrent.futures.Future()
        serializer = self.ctx.serializer
        transport = getattr(self.ctx, "transport", None)
        try:
            if not executor.alive:
                raise ExecutorLostError(executor.executor_id)
            # fault plans fire at launch on the driver: the injector's state
            # cannot ship to worker processes, and the future surfaces the
            # raise through the same retry path as the shared-state backends
            injector = self.ctx.fault_injector
            if injector is not None:
                injector.on_task_launch(TaskContext(
                    stage.id, task.partition, attempt, executor.executor_id
                ))
            # make the task self-contained: pre-fetch shuffle input + cache
            # blocks.  Shuffle input ships as the map outputs' serialized
            # frames (no driver-side decode + re-pickle); cache blocks ship
            # as serializer frames
            prefetched: dict[tuple[int, int], FrameBatch] = {}
            for shuffle_id, reduce_part in stage_shuffle_inputs(task.rdd, task.partition):
                blocks = self.ctx.shuffle_manager.fetch_blocks(shuffle_id, reduce_part)
                prefetched[(shuffle_id, reduce_part)] = FrameBatch(
                    [b.payload for b in blocks],
                    self.ctx.shuffle_manager.serializer_for(shuffle_id),
                )
            cached_blocks: dict[tuple[int, int], bytes] = {}
            for block_id in stage_cached_rdd_blocks(task.rdd, task.partition):
                data = executor.block_manager.get(block_id)
                if data is None:
                    remote = self.ctx.block_master.get_remote(
                        block_id, excluding=executor.executor_id
                    )
                    data = remote[0] if remote is not None else None
                if data is not None:
                    cached_blocks[block_id] = serializer.dumps(data)
            payload = pickle.dumps(
                {
                    "binary_id": tb.binary_id,
                    "binary": tb.blob if tb.ref is None else None,
                    "binary_ref": tb.ref,
                    "partition": task.partition,
                    "attempt": attempt,
                    "executor_id": executor.executor_id,
                    "speculative": speculative,
                    "prefetched_shuffle": prefetched,
                    "cached_blocks": cached_blocks,
                    "serializer": serializer,
                    # adaptive per-shuffle serializer picks: the worker's
                    # private ShuffleManager must frame its map output the
                    # same way the driver will decode it
                    "shuffle_serializers": self.ctx.shuffle_manager.serializer_overrides(),
                    "transport": transport.spec() if transport is not None else None,
                    "result_transport_min": self.ctx.config.transport_min_bytes * 4,
                    # the driver decides sampling so the profiled subset is
                    # identical across backends and retries
                    "profile": should_profile(
                        self.ctx.config.profile_fraction, stage.id, task.partition
                    ),
                    "profile_top_n": self.ctx.config.profile_top_n,
                    # structured-logging correlation: the worker captures at
                    # the driver's level and stamps these ids on its records
                    "job_id": job.job_id,
                    "log_level": self.ctx.config.log_level,
                    # W3C-traceparent-style trace context: the driver's trace
                    # id plus the open stage span the worker's task-phase
                    # fragments will stitch under.  Travels inside the task
                    # envelope across process and cluster-socket boundaries,
                    # so one fleet serving many drivers can tell their task
                    # streams apart
                    "trace_id": getattr(self.ctx, "trace_id", None),
                    "parent_span_id": (
                        self.ctx._tracer.open_stage_span_id(stage.id)
                        if getattr(self.ctx, "_tracer", None) is not None
                        else None
                    ),
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except BaseException as exc:  # noqa: BLE001 - surface via the future
            out_future.set_exception(exc)
            return out_future

        start = time.perf_counter()
        pool_future = self.ctx.backend.submit_pickled(payload, executor.executor_id)

        def _finish(done: concurrent.futures.Future) -> None:
            # the scheduler may have abandoned (cancelled) this attempt after
            # a heartbeat timeout; a late worker result must not blow up the
            # completion callback with InvalidStateError
            if out_future.cancelled():
                return
            try:
                from repro.engine.backends import unframe_result

                out, serialize_seconds, serialize_offset = unframe_result(
                    done.result(), transport
                )
                if commits is not None and not commits.try_claim(
                    task.partition, attempt
                ):
                    # a speculative sibling committed first: drop this
                    # result before any driver-state merge
                    raise _SpeculationLost(task.partition, attempt)
                value, record = self._merge_process_result(
                    stage, task, attempt, executor, tb,
                    out, serialize_seconds, serialize_offset, start,
                )
            except BaseException as exc:  # noqa: BLE001 - surface via the future
                try:
                    out_future.set_exception(exc)
                except concurrent.futures.InvalidStateError:
                    pass
            else:
                try:
                    out_future.set_result((value, record))
                except concurrent.futures.InvalidStateError:
                    pass

        # chain the backend future so _cancel_attempt can drop a queued
        # speculation loser before a worker ever picks it up
        out_future._pool_future = pool_future
        pool_future.add_done_callback(_finish)
        return out_future

    def _merge_process_result(
        self,
        stage: Stage,
        task: Task,
        attempt: int,
        executor: Executor,
        tb: _SerializedTaskBinary,
        out: dict,
        serialize_seconds: float,
        serialize_offset: float,
        start: float,
    ) -> tuple[Any, TaskRecord]:
        """Fold a worker's self-contained result back into driver state."""
        duration = time.perf_counter() - start
        # serialization time rides in the result frame header, outside the
        # body it measured
        out["metrics"].result_serialize_seconds += serialize_seconds
        span_fragments = list(out.get("span_fragments") or ())
        span_fragments.append({
            "name": "result_serialize",
            "start": serialize_offset,
            "end": serialize_offset + serialize_seconds,
        })
        # merge the worker registry's increments into the driver registry so
        # worker-side instrumentation survives the process boundary
        from repro.obs.registry import REGISTRY

        REGISTRY.merge_delta(out.get("registry_delta") or {})
        # replay worker-captured log records into the driver bus; they were
        # already level-filtered worker-side and carry their correlation ids
        from repro.obs.logging import LOG_BUS

        for data in out.get("log_records") or ():
            LOG_BUS.replay(LogRecord.from_dict(data))
        # merge shuffle output written remotely
        value = out["result"]
        if isinstance(task, ShuffleMapTask) and out["shuffle_output"] is not None:
            # the worker already bucketed (and map-side combined) its output;
            # adopt the buckets as-is instead of re-combining them
            value = self.ctx.shuffle_manager.register_map_output(
                task.shuffle_dep,
                map_partition=task.partition,
                buckets=out["shuffle_output"].get(
                    (task.shuffle_dep.shuffle_id, task.partition), {}
                ),
                executor_id=executor.executor_id,
                metrics=out["metrics"],
            )
        # merge newly cached blocks at the RDD's requested storage level
        for block_id, data in out["new_blocks"].items():
            level = tb.storage_levels.get(block_id[0], StorageLevel.MEMORY)
            executor.block_manager.put(block_id, data, level)
            if executor.block_manager.contains(block_id):
                self.ctx.block_master.register_block(block_id, executor.executor_id)
        # merge accumulator updates (dedup by stage/partition)
        for acc_id, local in out["accumulator_updates"].items():
            acc = self.ctx._accumulators.get(acc_id)
            if acc is not None:
                acc._merge(stage.id, task.partition, local)
        # task-binary accounting with per-executor dedup: the compressed blob
        # is charged once per (binary, executor); subsequent tasks on the
        # same executor only pay the pickled TransportRef (the bytes that
        # actually crossed the pipe once the blob is memoized worker-side).
        # Persistent backends remember shipments *across contexts* -- a warm
        # job re-running an identical stage charges only refs, which is the
        # whole point of keeping the executors alive.
        note = getattr(self.ctx.backend, "note_binary_shipped", None)
        if note is not None:
            first_ship = note(executor.executor_id, tb.binary_id)
        else:
            with self._lock:
                first_ship = executor.executor_id not in tb.shipped_executors
                tb.shipped_executors.add(executor.executor_id)
        if first_ship or tb.ref is None:
            out["metrics"].task_binary_bytes += len(tb.blob)
        else:
            out["metrics"].task_binary_bytes += tb.ref_cost
        record = TaskRecord(
            stage_id=stage.id,
            partition=task.partition,
            attempt=attempt,
            executor_id=executor.executor_id,
            duration_seconds=duration,
            metrics=out["metrics"],
            succeeded=True,
            start_time=start,
            profile=out.get("profile"),
            span_fragments=span_fragments,
        )
        return value, record

    # -- failure handling ----------------------------------------------------------

    def _handle_executor_loss(self, executor_id: str, job: JobMetrics) -> None:
        """Mark an executor dead; invalidate its cache blocks and map outputs."""
        for executor in self.ctx.executors:
            if executor.executor_id == executor_id and executor.alive:
                executor.kill()
                job.num_executor_failures_observed += 1
                self.ctx.listener_bus.post(
                    ExecutorLost(executor_id, reason="task execution failure")
                )
        self.ctx.block_master.remove_executor(executor_id)
        self.ctx.shuffle_manager.remove_outputs_on_executor(executor_id)


class DAGScheduler:
    """Builds the stage graph for an action and drives it to completion."""

    def __init__(self, ctx: "Context") -> None:
        self.ctx = ctx
        self.task_scheduler = TaskScheduler(ctx)

    def run_job(
        self,
        rdd: "RDD",
        func: Callable[[Iterator], Any],
        partitions: list[int] | None = None,
        description: str = "",
    ) -> list[Any]:
        config = self.ctx.config
        # an explicit partition subset pins the result layout; only a
        # default all-partitions job may be adaptively re-partitioned
        auto_partitions = partitions is None
        if partitions is None:
            partitions = list(range(rdd.num_partitions()))
        graph = StageGraph(rdd, self.ctx._stage_ids)
        job = JobMetrics(job_id=next(self.ctx._job_ids), description=description or rdd.name)
        job_start = time.perf_counter()
        job.submit_time = job_start
        bus = self.ctx.listener_bus
        bus.post(JobStart(job.job_id, job.description))

        # register every shuffle written by this job (idempotent re-register
        # keeps shared shuffles from earlier jobs usable)
        for shuffle_id, stage in graph.shuffle_stages.items():
            self.ctx.shuffle_manager.register_shuffle(shuffle_id, stage.num_tasks)

        results: dict[int, Any] = {}
        wanted = set(partitions)
        stage_attempts: dict[int, int] = {}

        with log_context(app=config.app_name, job_id=job.job_id):
            log.info(
                "job started",
                description=job.description,
                num_stages=len(graph.all_stages()),
                num_partitions=len(partitions),
            )
            try:
                self._drive(
                    graph, job, func, results, partitions, wanted,
                    auto_partitions, stage_attempts, config, description,
                )
            except Exception as exc:
                job.wall_seconds = time.perf_counter() - job_start
                bus.post(JobEnd(job.job_id, job, succeeded=False))
                log.error(
                    "job failed",
                    description=job.description,
                    wall_seconds=round(job.wall_seconds, 6),
                    error=f"{type(exc).__name__}: {exc}",
                )
                raise

            job.wall_seconds = time.perf_counter() - job_start
            self.ctx.metrics.add_job(job)
            bus.post(JobEnd(job.job_id, job))
            log.info(
                "job finished",
                description=job.description,
                wall_seconds=round(job.wall_seconds, 6),
                num_task_failures=job.num_task_failures,
            )
        return [results[p] for p in partitions]

    def _drive(
        self,
        graph: StageGraph,
        job: JobMetrics,
        func: Callable[[Iterator], Any],
        results: dict[int, Any],
        partitions: list[int],
        wanted: set[int],
        auto_partitions: bool,
        stage_attempts: dict[int, int],
        config: Any,
        description: str,
    ) -> None:
        bus = self.ctx.listener_bus
        planner = getattr(self.ctx, "adaptive", None)
        # remaps are job-scoped: shuffle storage keeps its original bucket
        # layout, and the partitioner mutation must be undone so later jobs
        # that reuse the same RDD chain see the committed static plan
        applied_remaps: list = []
        adapted: set[int] = set()
        try:
            self._drive_stages(
                graph, job, func, results, partitions, wanted, auto_partitions,
                stage_attempts, config, description, planner, applied_remaps,
                adapted,
            )
        finally:
            for applied in applied_remaps:
                applied.revert()

    def _drive_stages(
        self,
        graph: StageGraph,
        job: JobMetrics,
        func: Callable[[Iterator], Any],
        results: dict[int, Any],
        partitions: list[int],
        wanted: set[int],
        auto_partitions: bool,
        stage_attempts: dict[int, int],
        config: Any,
        description: str,
        planner: Any,
        applied_remaps: list,
        adapted: set[int],
    ) -> None:
        bus = self.ctx.listener_bus
        while True:
            progressed = False
            for stage in graph.all_stages():
                if not self._parents_ready(stage):
                    continue
                if planner is not None and stage.id not in adapted:
                    adapted.add(stage.id)
                    self._maybe_adapt_stage(
                        stage, graph, job, planner, applied_remaps,
                        partitions, wanted, auto_partitions, results,
                    )
                if stage.is_shuffle_map:
                    missing = sorted(
                        self.ctx.shuffle_manager.missing_maps(stage.shuffle_dep.shuffle_id)
                    )
                    if not missing:
                        continue
                    tasks: list[Task] = [
                        ShuffleMapTask(stage.id, stage.rdd, p, stage.shuffle_dep)
                        for p in missing
                    ]
                else:
                    missing = sorted(wanted - set(results))
                    if not missing:
                        continue
                    tasks = [ResultTask(stage.id, stage.rdd, p, func) for p in missing]
                progressed = True
                attempt = stage_attempts.get(stage.id, 0)
                stage_metrics = StageMetrics(
                    stage_id=stage.id,
                    name=stage.name,
                    num_tasks=len(tasks),
                    attempt=attempt,
                    parent_stage_ids=tuple(p.id for p in stage.parents),
                    is_shuffle_map=stage.is_shuffle_map,
                )
                stage_start = time.perf_counter()
                stage_metrics.submit_time = stage_start
                bus.post(StageSubmitted(
                    stage.id, attempt, stage.name, len(tasks), job.job_id
                ))
                log.debug(
                    "stage submitted",
                    stage_id=stage.id, name=stage.name,
                    num_tasks=len(tasks), stage_attempt=attempt,
                )
                try:
                    stage_results = self.task_scheduler.run_task_set(
                        stage, tasks, job, stage_metrics
                    )
                except _FetchFailedSignal:
                    stage_metrics.wall_seconds = time.perf_counter() - stage_start
                    job.stages.append(stage_metrics)
                    bus.post(StageCompleted(stage_metrics, job.job_id, failed=True))
                    stage_attempts[stage.id] = attempt + 1
                    job.num_stage_resubmissions += 1
                    log.warning(
                        "stage hit a fetch failure; resubmitting parents",
                        stage_id=stage.id, name=stage.name,
                        stage_attempt=stage_attempts[stage.id],
                    )
                    if stage_attempts[stage.id] > config.max_stage_retries:
                        raise JobFailedError(
                            f"{stage.name} exceeded {config.max_stage_retries} resubmissions"
                        ) from None
                    # loop around: missing map outputs will be recomputed
                    break
                except Exception:
                    # permanent failure: keep the partial stage tree on the
                    # job metrics so the failed-job event-log line and
                    # post-mortem bundles carry the failing task records
                    stage_metrics.wall_seconds = time.perf_counter() - stage_start
                    job.stages.append(stage_metrics)
                    bus.post(StageCompleted(stage_metrics, job.job_id, failed=True))
                    raise
                stage_metrics.wall_seconds = time.perf_counter() - stage_start
                job.stages.append(stage_metrics)
                bus.post(StageCompleted(stage_metrics, job.job_id))
                log.debug(
                    "stage completed",
                    stage_id=stage.id, name=stage.name,
                    wall_seconds=round(stage_metrics.wall_seconds, 6),
                )
                if not stage.is_shuffle_map:
                    results.update(stage_results)
            if wanted <= set(results):
                return
            if not progressed:
                raise JobFailedError(
                    "scheduler made no progress; stage graph is stuck "
                    f"(job {job.job_id}, {description!r})"
                )

    def _maybe_adapt_stage(
        self,
        stage: Stage,
        graph: StageGraph,
        job: JobMetrics,
        planner: Any,
        applied_remaps: list,
        partitions: list[int],
        wanted: set[int],
        auto_partitions: bool,
        results: dict[int, Any],
    ) -> None:
        """Stage boundary: let the planner rewrite this stage's reduce layout.

        Runs once per stage, after its parents' map outputs are complete and
        before any of its own tasks launch.  A shuffle-map stage that already
        produced output (stage resubmission) and a result stage with an
        explicit partition subset or partial results are left alone.
        """
        manager = self.ctx.shuffle_manager
        if stage.is_shuffle_map:
            if manager.available_maps(stage.shuffle_dep.shuffle_id):
                return
        elif not auto_partitions or results:
            return
        applied = planner.maybe_rebalance(stage, graph, job.job_id)
        if applied is None:
            return
        applied_remaps.append(applied)
        new_count = stage.refresh_num_tasks()
        if stage.is_shuffle_map:
            # this stage now writes new_count map outputs downstream reads;
            # the revert purges them so a later (static-plan) job recomputes
            manager.register_shuffle(stage.shuffle_dep.shuffle_id, new_count)
            applied.downstream_shuffle_id = stage.shuffle_dep.shuffle_id
        else:
            partitions[:] = list(range(new_count))
            wanted.clear()
            wanted.update(partitions)
        log.info(
            "adaptive plan applied",
            job_id=job.job_id, stage_id=stage.id,
            kind=applied.remap.kind(),
            old_partitions=applied.remap.base_partitions,
            new_partitions=applied.remap.new_partitions,
        )

    def _parents_ready(self, stage: Stage) -> bool:
        for shuffle_id in stage.parent_shuffle_ids():
            if self.ctx.shuffle_manager.missing_maps(shuffle_id):
                return False
        return True
