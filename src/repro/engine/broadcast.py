"""Broadcast variables.

A broadcast wraps a read-only value shipped once to every executor rather
than with every task closure.  In this single-process engine the win is
semantic fidelity plus metrics: the context records broadcast sizes so the
cost model can charge network transfer, and ``unpersist``/``destroy``
lifecycle matches Spark's.
"""

from __future__ import annotations

import pickle
from typing import Any, Generic, TypeVar

T = TypeVar("T")


class BroadcastDestroyedError(RuntimeError):
    """Raised when ``.value`` is read after ``destroy()``."""


class Broadcast(Generic[T]):
    """Handle to a value broadcast to all executors."""

    def __init__(self, broadcast_id: int, value: T) -> None:
        self.id = broadcast_id
        self._value: T | None = value
        self._destroyed = False
        self._size_bytes: int | None = None

    @property
    def value(self) -> T:
        if self._destroyed:
            raise BroadcastDestroyedError(f"broadcast {self.id} was destroyed")
        return self._value  # type: ignore[return-value]

    @property
    def size_bytes(self) -> int:
        """Pickled size of the payload (computed lazily, cached)."""
        if self._size_bytes is None:
            if self._destroyed:
                raise BroadcastDestroyedError(f"broadcast {self.id} was destroyed")
            self._size_bytes = len(pickle.dumps(self._value, protocol=pickle.HIGHEST_PROTOCOL))
        return self._size_bytes

    def unpersist(self) -> None:
        """Release executor copies (no-op here beyond semantics)."""

    def destroy(self) -> None:
        """Release the value entirely; further ``.value`` reads raise."""
        self._destroyed = True
        self._value = None

    def __repr__(self) -> str:
        state = "destroyed" if self._destroyed else "live"
        return f"Broadcast(id={self.id}, {state})"
