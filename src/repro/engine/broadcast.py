"""Broadcast variables.

A broadcast wraps a read-only value shipped once to every executor rather
than with every task closure.  In this single-process engine the win is
semantic fidelity plus metrics: the context records broadcast sizes so the
cost model can charge network transfer, and ``unpersist``/``destroy``
lifecycle matches Spark's.

With the process backend a context-attached :class:`~repro.engine.transport.
Transport` upgrades broadcasts to out-of-band delivery: the first pickle of
a large broadcast publishes its compressed payload to shared memory (or the
temp-file fallback) exactly once, and every task closure thereafter carries
only a :class:`~repro.engine.transport.TransportRef`.  Workers attach the
segment lazily on first ``.value`` access and memoize the decoded value for
the life of the process -- the Torrent-broadcast idea reduced to one host.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from typing import Any, Generic, TypeVar

T = TypeVar("T")

#: compressed payloads at least this large travel by transport ref; tiny
#: broadcasts are cheaper inline than as a ref + segment attach
_BROADCAST_TRANSPORT_MIN = 16 * 1024

#: worker-side memo: transport ref identity -> decoded value (read-only,
#: safe to share).  Keyed by (scheme, key) rather than broadcast id because
#: persistent cluster workers outlive driver contexts, and every fresh
#: context restarts broadcast ids at 0 -- id keys would collide across jobs
#: while ref keys are content-addressed and never do.  LRU-capped like the
#: task-binary cache: persistent executors would otherwise accumulate
#: every broadcast value ever seen for the life of the fleet.
_WORKER_VALUES: "OrderedDict[tuple[str, str], Any]" = OrderedDict()
_WORKER_VALUES_MAX = 64
_WORKER_LOCK = threading.Lock()


class BroadcastDestroyedError(RuntimeError):
    """Raised when ``.value`` is read after ``destroy()``."""


class Broadcast(Generic[T]):
    """Handle to a value broadcast to all executors."""

    def __init__(
        self,
        broadcast_id: int,
        value: T,
        transport: Any = None,
        transport_min: int = _BROADCAST_TRANSPORT_MIN,
    ) -> None:
        self.id = broadcast_id
        self._value: T | None = value
        self._destroyed = False
        self._size_bytes: int | None = None
        self._transport = transport
        self._transport_min = transport_min
        self._ref: Any = None  # TransportRef once published
        self._blob: bytes | None = None  # compressed pickle, driver-side cache

    @property
    def value(self) -> T:
        if self._destroyed:
            raise BroadcastDestroyedError(f"broadcast {self.id} was destroyed")
        if self._value is None and self._ref is not None:
            self._value = self._fetch_remote()
        return self._value  # type: ignore[return-value]

    def _fetch_remote(self) -> T:
        """Worker-side lazy load: attach the segment once per process."""
        memo_key = (self._ref.scheme, self._ref.key)
        with _WORKER_LOCK:
            if memo_key in _WORKER_VALUES:
                from repro.engine.backends import current_task_executor
                from repro.obs.registry import REGISTRY

                _WORKER_VALUES.move_to_end(memo_key)
                REGISTRY.counter(
                    "broadcast_memo_hits_total",
                    "Broadcast values served from the worker's warm memo",
                    labelnames=("executor",),
                ).labels(executor=current_task_executor()).inc()
                return _WORKER_VALUES[memo_key]
        from repro.engine.serializer import decompress_blob
        from repro.engine.transport import worker_transport

        transport = worker_transport()
        if transport is None:
            raise RuntimeError(
                f"broadcast {self.id} shipped by ref but no transport attached"
            )
        value = pickle.loads(decompress_blob(transport.get(self._ref)))
        with _WORKER_LOCK:
            _WORKER_VALUES[memo_key] = value
            _WORKER_VALUES.move_to_end(memo_key)
            while len(_WORKER_VALUES) > _WORKER_VALUES_MAX:
                _WORKER_VALUES.popitem(last=False)
        return value

    def _publish(self) -> bytes | None:
        """Compress the payload and, when large, publish it out-of-band.

        Returns the compressed blob when the broadcast stays inline, or
        ``None`` once a transport ref exists.  Idempotent: the content-hash
        dedup in :meth:`Transport.put` plus driver-side memoization mean
        repeated pickles of the same broadcast never re-publish.
        """
        if self._ref is not None:
            return None
        if self._blob is None:
            from repro.engine.serializer import compress_blob

            raw = pickle.dumps(self._value, protocol=pickle.HIGHEST_PROTOCOL)
            self._size_bytes = len(raw)
            self._blob = compress_blob(raw)
        if self._transport is not None and len(self._blob) >= self._transport_min:
            self._ref = self._transport.put(self._blob, dedup=True)
            return None
        return self._blob

    def __getstate__(self) -> dict:
        if self._destroyed:
            raise BroadcastDestroyedError(
                f"cannot ship destroyed broadcast {self.id}"
            )
        blob = self._publish()
        return {
            "id": self.id,
            "ref": self._ref,
            "blob": blob,
            "transport_min": self._transport_min,
        }

    def __setstate__(self, state: dict) -> None:
        self.id = state["id"]
        self._destroyed = False
        self._size_bytes = None
        self._transport = None
        self._transport_min = state["transport_min"]
        self._ref = state["ref"]
        self._blob = None
        if state["blob"] is not None:
            from repro.engine.serializer import decompress_blob

            self._value = pickle.loads(decompress_blob(state["blob"]))
        else:
            self._value = None  # lazy-loaded from the transport on .value

    @property
    def size_bytes(self) -> int:
        """Pickled (uncompressed) size of the payload (lazy, cached)."""
        if self._size_bytes is None:
            if self._destroyed:
                raise BroadcastDestroyedError(f"broadcast {self.id} was destroyed")
            self._size_bytes = len(
                pickle.dumps(self._value, protocol=pickle.HIGHEST_PROTOCOL)
            )
        return self._size_bytes

    def unpersist(self) -> None:
        """Release executor copies and any published transport segment."""
        if self._transport is not None and self._ref is not None:
            self._transport.delete(self._ref)
            self._ref = None
            self._blob = None

    def destroy(self) -> None:
        """Release the value entirely; further ``.value`` reads raise."""
        self.unpersist()
        self._destroyed = True
        self._value = None
        self._blob = None

    def __repr__(self) -> str:
        state = "destroyed" if self._destroyed else "live"
        return f"Broadcast(id={self.id}, {state})"
