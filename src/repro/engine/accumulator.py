"""Accumulators: write-only shared variables merged at the driver.

Matches Spark semantics: task-side ``add`` calls buffer locally and are
merged into the driver value exactly once per *successfully completed*
partition, so retried tasks do not double count.
"""

from __future__ import annotations

import operator
import threading
from typing import Any, Callable, Generic, TypeVar

T = TypeVar("T")


class Accumulator(Generic[T]):
    """Driver-side accumulator handle.

    ``op`` must be associative and commutative; defaults to ``+``.
    """

    def __init__(self, acc_id: int, initial: T, op: Callable[[T, T], T] = operator.add, zero: T | None = None) -> None:
        self.id = acc_id
        self._value = initial
        self._op = op
        #: identity element used to seed per-task buffers; defaults to the
        #: type's zero for int/float/list, else ``initial``-shaped copies
        #: must be supplied explicitly.
        if zero is not None:
            self.zero = zero
        elif isinstance(initial, bool):
            self.zero = False  # type: ignore[assignment]
        elif isinstance(initial, (int, float)):
            self.zero = type(initial)(0)  # type: ignore[assignment]
        elif isinstance(initial, list):
            self.zero = []  # type: ignore[assignment]
        else:
            raise ValueError("zero element required for non-numeric accumulator")
        self._lock = threading.Lock()
        #: (stage_id, partition) pairs already merged -- retry dedup
        self._merged: set[tuple[int, int]] = set()

    @property
    def value(self) -> T:
        return self._value

    def add(self, update: T) -> None:
        """Add an update: buffered inside a running task, direct on the driver.

        Task-side updates are merged into the driver value only when the
        task attempt *succeeds*, so retried tasks never double count.
        """
        from repro.engine.task import current_task_context

        tc = current_task_context()
        if tc is not None:
            tc.accumulators.add(self, update)
        else:
            with self._lock:
                self._value = self._op(self._value, update)

    def _merge(self, stage_id: int, partition: int, local: T) -> None:
        """Merge a completed task's buffered updates (idempotent per task)."""
        with self._lock:
            key = (stage_id, partition)
            if key in self._merged:
                return
            self._merged.add(key)
            self._value = self._op(self._value, local)

    def reset(self, value: T) -> None:
        """Reset the accumulator between jobs (clears the dedup record)."""
        with self._lock:
            self._value = value
            self._merged.clear()

    def __getstate__(self) -> dict:
        # process backend ships accumulator *definitions* to workers; the
        # lock and the driver-side dedup record stay home
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_merged"] = set()
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return f"Accumulator(id={self.id}, value={self._value!r})"


class AccumulatorBuffer:
    """Task-local buffer of accumulator updates, merged on task success."""

    def __init__(self, accumulators: dict[int, Accumulator]) -> None:
        self._accs = accumulators
        self._local: dict[int, Any] = {}

    def add(self, acc: Accumulator, update: Any) -> None:
        if acc.id not in self._accs:
            raise KeyError(f"accumulator {acc.id} not registered with this context")
        if acc.id in self._local:
            self._local[acc.id] = acc._op(self._local[acc.id], update)
        else:
            # seed from the identity so driver merge is a single op
            self._local[acc.id] = acc._op(acc.zero, update)

    def merge_into_driver(self, stage_id: int, partition: int) -> None:
        for acc_id, local in self._local.items():
            self._accs[acc_id]._merge(stage_id, partition, local)

    def snapshot(self) -> dict[int, Any]:
        """Local updates keyed by accumulator id (for the process backend)."""
        return dict(self._local)

    def restore(self, snap: dict[int, Any]) -> None:
        self._local = dict(snap)
