"""Event log: persist job/stage/task metrics as JSON lines.

The analogue of Spark's event log + history server: every completed job's
stage DAG and per-task measurements can be written to a ``.jsonl`` file
and reloaded later -- including in a different process -- for offline
inspection (``sparkscore history``), trace export, or what-if replay
through :mod:`repro.core.replay`.

Format: one JSON object per line, ``{"event": "job", ...}``, versioned so
future fields can be added compatibly.  Version history:

- **v1** -- original format: job/stage/task tree with metrics.
- **v2** -- adds monotonic timestamps (job/stage ``submit_time``, task
  ``start_time``) and the ``size_estimation_seconds`` task metric, feeding
  critical-path analysis and Chrome trace export.  v1 logs still load:
  the new fields default to zero.
- **v3** -- executor telemetry plane.  Task records carry the resource
  telemetry metrics (GC pause, peak RSS, deserialize/serialize split),
  sampled-profiler hotspot rows, and worker span fragments; the log also
  interleaves ``heartbeat`` and ``executor_timed_out`` record lines.
  Loading is zero-default in both directions: v1/v2 logs load with the new
  fields defaulted, and v3 telemetry lines are skipped by job readers.
- **v4** -- structured logging.  The log may interleave ``log`` record
  lines (one :class:`repro.obs.logging.LogRecord` each, with correlation
  ids), recoverable via :func:`read_logs`.  Job readers skip them; v3
  and earlier fixtures still load unchanged.  Readers also became
  crash-safe: a truncated *final* line (the writer was killed mid-write)
  produces a warning and a partial result instead of raising.
- **v5** -- continuous monitoring.  Two new side-channel kinds:
  ``series`` lines carry one metrics-sampler tick each (only the samples
  whose value changed, as ``[name, {labels}, value]`` triples against a
  shared monotonic timestamp), recoverable via :func:`read_series` so
  ``sparkscore history`` can replay metric evolution offline; ``alert``
  lines record alert-engine transitions (firing/resolved), recoverable
  via :func:`read_alerts`.  v4 and earlier logs still load unchanged.
- **v6** -- fleet observability.  ``fleet`` lines carry one
  cluster-resident fleet snapshot each (uptime, jobs served, per-driver
  throughput, warm-cache economics, trailing per-executor series from
  the fleet's own TSDB), written by the context at ``stop()`` when the
  backend exposes one.  Recoverable via :func:`read_fleet`, so
  ``sparkscore history`` and ``doctor`` can see cross-job fleet state
  long after the cluster is gone.  v5 and earlier logs load unchanged.
- **v7** -- adaptive query execution.  Task records gain an optional
  ``speculative`` flag (present only when a winning attempt was a
  speculative twin), and a new ``adaptive`` side channel records every
  planner decision: skew splits/coalesces, per-shuffle serializer picks,
  and speculative launches.  Recoverable via :func:`read_adaptive` so
  ``sparkscore history`` and post-mortem bundles can show *why* a job's
  physical plan diverged from its static one.  v6 and earlier logs load
  unchanged.
- **v8** -- inference observability.  An ``inference`` side channel
  records the convergence of resampling p-values: one ``batch`` line per
  replicate batch folded into the convergence monitor (running replicate
  totals, sets converged, smallest p-value estimate) and one flushed
  ``converged`` line per SNP-set whose confidence interval became
  decisive (status, p-value, CI bounds at decision time).  Recoverable
  via :func:`read_inference` so ``sparkscore history``/``doctor`` can
  audit early-stop decisions and recommend replicate budgets offline.
  v7 and earlier logs load unchanged.

Since the listener-bus refactor the log is written *incrementally*: the
context attaches an :class:`EventLogListener` to its bus and each job is
flushed as it ends, so a crashed driver still leaves every completed job
on disk.  The module-level :func:`write_event_log` / :func:`read_event_log`
functions remain for bulk/offline use.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import asdict
from typing import IO, Iterable

from repro.engine.listener import (
    AdaptivePlanApplied,
    ExecutorHeartbeat,
    ExecutorTimedOut,
    InferenceBatchCompleted,
    JobEnd,
    Listener,
    SnpSetConverged,
    SpeculativeTaskLaunched,
)
from repro.engine.metrics import JobMetrics, StageMetrics, TaskMetrics, TaskRecord
from repro.obs.logging import LogRecord

FORMAT_VERSION = 8
SUPPORTED_VERSIONS = (1, 2, 3, 4, 5, 6, 7, 8)

#: non-job record kinds introduced by v3 (telemetry side-channel)
TELEMETRY_EVENTS = ("heartbeat", "executor_timed_out")

#: side-channel record kinds a job reader skips, with the format version
#: that introduced each (older logs containing them are corrupt)
SIDE_CHANNEL_MIN_VERSION = {
    "heartbeat": 3,
    "executor_timed_out": 3,
    "log": 4,
    "series": 5,
    "alert": 5,
    "fleet": 6,
    "adaptive": 7,
    "inference": 8,
}


def _job_to_dict(job: JobMetrics) -> dict:
    return {
        "event": "job",
        "version": FORMAT_VERSION,
        "job_id": job.job_id,
        "description": job.description,
        "wall_seconds": job.wall_seconds,
        "submit_time": job.submit_time,
        "num_task_failures": job.num_task_failures,
        "num_stage_resubmissions": job.num_stage_resubmissions,
        "num_executor_failures_observed": job.num_executor_failures_observed,
        "stages": [
            {
                "stage_id": stage.stage_id,
                "name": stage.name,
                "num_tasks": stage.num_tasks,
                "attempt": stage.attempt,
                "parent_stage_ids": list(stage.parent_stage_ids),
                "is_shuffle_map": stage.is_shuffle_map,
                "wall_seconds": stage.wall_seconds,
                "submit_time": stage.submit_time,
                "tasks": [_task_to_dict(rec) for rec in stage.tasks],
            }
            for stage in job.stages
        ],
    }


def _task_to_dict(rec: TaskRecord) -> dict:
    out = {
        "stage_id": rec.stage_id,
        "partition": rec.partition,
        "attempt": rec.attempt,
        "executor_id": rec.executor_id,
        "duration_seconds": rec.duration_seconds,
        "start_time": rec.start_time,
        "succeeded": rec.succeeded,
        "error": rec.error,
        "metrics": asdict(rec.metrics),
    }
    # telemetry payloads are omitted when absent to keep lines compact
    if rec.profile is not None:
        out["profile"] = rec.profile
    if rec.span_fragments:
        out["span_fragments"] = rec.span_fragments
    if rec.speculative:
        out["speculative"] = True
    return out


def _job_from_dict(data: dict) -> JobMetrics:
    if data.get("event") != "job":
        raise ValueError(f"not a job event: {data.get('event')!r}")
    version = data.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported event-log version {version!r}")
    job = JobMetrics(
        job_id=data["job_id"],
        description=data["description"],
        wall_seconds=data["wall_seconds"],
        submit_time=data.get("submit_time", 0.0),
        num_task_failures=data["num_task_failures"],
        num_stage_resubmissions=data["num_stage_resubmissions"],
        num_executor_failures_observed=data["num_executor_failures_observed"],
    )
    for stage_data in data["stages"]:
        stage = StageMetrics(
            stage_id=stage_data["stage_id"],
            name=stage_data["name"],
            num_tasks=stage_data["num_tasks"],
            attempt=stage_data["attempt"],
            parent_stage_ids=tuple(stage_data["parent_stage_ids"]),
            is_shuffle_map=stage_data["is_shuffle_map"],
            wall_seconds=stage_data["wall_seconds"],
            submit_time=stage_data.get("submit_time", 0.0),
        )
        for rec in stage_data["tasks"]:
            # v1 task metrics lack fields added later; TaskMetrics defaults
            # cover them
            stage.tasks.append(
                TaskRecord(
                    stage_id=rec["stage_id"],
                    partition=rec["partition"],
                    attempt=rec["attempt"],
                    executor_id=rec["executor_id"],
                    duration_seconds=rec["duration_seconds"],
                    start_time=rec.get("start_time", 0.0),
                    metrics=TaskMetrics(**rec["metrics"]),
                    succeeded=rec["succeeded"],
                    error=rec["error"],
                    profile=rec.get("profile"),
                    span_fragments=list(rec.get("span_fragments") or ()),
                    speculative=bool(rec.get("speculative", False)),
                )
            )
        job.stages.append(stage)
    return job


def write_event_log(jobs: Iterable[JobMetrics], path_or_file: str | IO[str]) -> int:
    """Append one JSON line per job; returns the number written."""
    own = isinstance(path_or_file, str)
    fh: IO[str] = open(path_or_file, "a") if own else path_or_file  # type: ignore[assignment]
    count = 0
    try:
        for job in jobs:
            fh.write(json.dumps(_job_to_dict(job), separators=(",", ":")) + "\n")
            count += 1
    finally:
        if own:
            fh.close()
    return count


def _is_side_channel(data: dict) -> bool:
    """v3+ interleaves side-channel records (telemetry, logs) with job
    records; job readers skip them.  The same kinds in v1/v2 logs still
    fail loudly (they predate the side channel, so a non-job line there is
    corruption)."""
    min_version = SIDE_CHANNEL_MIN_VERSION.get(data.get("event"))
    return min_version is not None and data.get("version", 0) >= min_version


def read_event_log(path_or_file: str | IO[str]) -> list[JobMetrics]:
    """Load all job records from an event log (any supported version).

    Crash-safe: a final line that is not valid JSON is the signature of a
    writer killed mid-write, so it produces a :class:`UserWarning` and the
    jobs loaded so far instead of raising.  Unparseable lines *before* the
    end of the file -- and parseable-but-invalid records anywhere -- are
    real corruption and still raise :class:`ValueError`.
    """
    own = isinstance(path_or_file, str)
    fh: IO[str] = open(path_or_file) if own else path_or_file  # type: ignore[assignment]
    try:
        lines = fh.read().splitlines()
        jobs = []
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(lines):
                    warnings.warn(
                        f"event log ends with a truncated line {lineno} "
                        f"(writer killed mid-write?); loaded {len(jobs)} "
                        f"complete job(s)",
                        stacklevel=2,
                    )
                    break
                raise ValueError(f"event log line {lineno} is corrupt: {exc}") from exc
            try:
                if _is_side_channel(data):
                    continue
                jobs.append(_job_from_dict(data))
            except KeyError as exc:
                raise ValueError(f"event log line {lineno} is corrupt: {exc}") from exc
        return jobs
    finally:
        if own:
            fh.close()


def read_telemetry(path_or_file: str | IO[str]) -> list[dict]:
    """Load the v3 telemetry records (heartbeats, timeouts) from a log.

    Returns raw dicts in file order; empty for v1/v2 logs.
    """
    own = isinstance(path_or_file, str)
    fh: IO[str] = open(path_or_file) if own else path_or_file  # type: ignore[assignment]
    try:
        out = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if data.get("event") in TELEMETRY_EVENTS:
                out.append(data)
        return out
    finally:
        if own:
            fh.close()


def read_logs(path_or_file: str | IO[str]) -> list[LogRecord]:
    """Load the v4 structured-log records from an event log.

    Returns :class:`~repro.obs.logging.LogRecord` objects in file order;
    empty for v1-v3 logs.  Unparseable lines are skipped (same tolerance
    as :func:`read_telemetry`: the side channel is best-effort).
    """
    own = isinstance(path_or_file, str)
    fh: IO[str] = open(path_or_file) if own else path_or_file  # type: ignore[assignment]
    try:
        out = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if data.get("event") == "log":
                out.append(LogRecord.from_dict(data))
        return out
    finally:
        if own:
            fh.close()


def read_series(path_or_file: str | IO[str]) -> list[dict]:
    """Load the v5 metric-series records from an event log.

    Returns one dict per sampler tick, in file order:
    ``{"time": t, "samples": [[name, {labels}, value], ...]}``; empty for
    v1-v4 logs.  Unparseable lines are skipped (the side channel is
    best-effort, same tolerance as :func:`read_telemetry`).
    """
    own = isinstance(path_or_file, str)
    fh: IO[str] = open(path_or_file) if own else path_or_file  # type: ignore[assignment]
    try:
        out = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if data.get("event") == "series":
                out.append({"time": data.get("time", 0.0),
                            "samples": data.get("samples", [])})
        return out
    finally:
        if own:
            fh.close()


def series_to_points(records: list[dict]) -> dict[tuple, list[tuple[float, float]]]:
    """Pivot :func:`read_series` output into per-series point lists.

    Returns ``{(name, ((label, value), ...)): [(time, value), ...]}`` --
    the shape ``sparkscore history --series`` plots from.  Because the
    writer only records *changed* samples, consecutive points already
    differ in value.
    """
    out: dict[tuple, list[tuple[float, float]]] = {}
    for rec in records:
        t = rec.get("time", 0.0)
        for sample in rec.get("samples", []):
            name, labels, value = sample
            key = (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))
            out.setdefault(key, []).append((t, float(value)))
    return out


def read_fleet(path_or_file: str | IO[str]) -> list[dict]:
    """Load the v6 fleet-snapshot records from an event log.

    Returns one snapshot dict per ``fleet`` line (uptime, jobs served,
    per-driver throughput, warm-cache stats, trailing fleet series), in
    file order; empty for v1-v5 logs.  Unparseable lines are skipped
    (the side channel is best-effort).
    """
    own = isinstance(path_or_file, str)
    fh: IO[str] = open(path_or_file) if own else path_or_file  # type: ignore[assignment]
    try:
        out = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if data.get("event") == "fleet":
                out.append(data.get("snapshot", {}))
        return out
    finally:
        if own:
            fh.close()


def read_adaptive(path_or_file: str | IO[str]) -> list[dict]:
    """Load the v7 adaptive-decision records from an event log.

    Returns raw decision dicts in file order -- ``kind`` is ``"split"``,
    ``"coalesce"``, ``"rebalance"``, ``"serializer"``, or
    ``"speculation"`` -- empty for v1-v6 logs.  Unparseable lines are
    skipped (the side channel is best-effort).
    """
    own = isinstance(path_or_file, str)
    fh: IO[str] = open(path_or_file) if own else path_or_file  # type: ignore[assignment]
    try:
        out = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if data.get("event") == "adaptive":
                out.append(data)
        return out
    finally:
        if own:
            fh.close()


def read_inference(path_or_file: str | IO[str]) -> list[dict]:
    """Load the v8 inference-convergence records from an event log.

    Returns raw dicts in file order -- ``kind`` is ``"batch"`` (one
    replicate batch folded: running replicate totals, sets converged,
    smallest p-value estimate) or ``"converged"`` (one SNP-set decision
    with its CI bounds at decision time) -- empty for v1-v7 logs.
    Unparseable lines are skipped (the side channel is best-effort).
    """
    own = isinstance(path_or_file, str)
    fh: IO[str] = open(path_or_file) if own else path_or_file  # type: ignore[assignment]
    try:
        out = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if data.get("event") == "inference":
                out.append(data)
        return out
    finally:
        if own:
            fh.close()


def read_alerts(path_or_file: str | IO[str]) -> list[dict]:
    """Load the v5 alert-transition records from an event log.

    Returns raw transition dicts (rule, severity, transition, value, ...)
    in file order; empty for v1-v4 logs.
    """
    own = isinstance(path_or_file, str)
    fh: IO[str] = open(path_or_file) if own else path_or_file  # type: ignore[assignment]
    try:
        out = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if data.get("event") == "alert":
                out.append(data)
        return out
    finally:
        if own:
            fh.close()


class EventLogListener(Listener):
    """Bus listener that streams each completed job to a JSONL event log.

    Opens the file lazily on the first job, appends one line per
    :class:`~repro.engine.listener.JobEnd`, flushes after every write, and
    closes on context stop.  Failed jobs are logged too (their partial
    stage records are often the most interesting ones).

    The v3 telemetry side channel rides in the same file: heartbeat and
    executor-timeout events are appended as their own compact record lines
    (these are not flushed per line -- heartbeats are periodic, and a lost
    tail of liveness records is harmless).

    The v4 structured-log side channel rides there too: the context
    registers :meth:`write_log` as a sink on the process log bus, so every
    emitted :class:`~repro.obs.logging.LogRecord` lands as a ``log`` line
    interleaved with the jobs it describes.

    The v5 monitoring side channel completes the picture: the context
    registers :meth:`write_series` as a tick sink on the metrics sampler
    (one ``series`` line per tick with a change) and :meth:`write_alert`
    as an alert-manager sink (one flushed ``alert`` line per transition --
    alerts are rare and forensic, so losing the tail is not acceptable).

    The v6 fleet side channel is stop-time: on a persistent-cluster
    backend the context calls :meth:`write_fleet` once as it stops,
    freezing the cluster-resident snapshot into the log this driver
    leaves behind.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: IO[str] | None = None
        self.jobs_written = 0
        self.telemetry_written = 0
        self.logs_written = 0
        self.series_written = 0
        self.alerts_written = 0
        self.fleet_written = 0
        self.adaptive_written = 0
        self.inference_written = 0

    def _file(self) -> IO[str]:
        if self._fh is None:
            self._fh = open(self.path, "a")
        return self._fh

    def on_job_end(self, event: JobEnd) -> None:
        fh = self._file()
        fh.write(json.dumps(_job_to_dict(event.job), separators=(",", ":")) + "\n")
        fh.flush()
        self.jobs_written += 1

    def on_executor_heartbeat(self, event: ExecutorHeartbeat) -> None:
        self._write_telemetry({
            "event": "heartbeat",
            "version": FORMAT_VERSION,
            "time": event.time,
            "executor_id": event.executor_id,
            "inflight": [list(t) for t in event.inflight],
            "records_read": event.records_read,
            "rss_bytes": event.rss_bytes,
            "worker_pid": event.worker_pid,
        })

    def on_executor_timed_out(self, event: ExecutorTimedOut) -> None:
        self._write_telemetry({
            "event": "executor_timed_out",
            "version": FORMAT_VERSION,
            "time": event.time,
            "executor_id": event.executor_id,
            "seconds_since_heartbeat": event.seconds_since_heartbeat,
        })

    def _write_telemetry(self, data: dict) -> None:
        self._file().write(json.dumps(data, separators=(",", ":")) + "\n")
        self.telemetry_written += 1

    def on_adaptive_plan_applied(self, event: AdaptivePlanApplied) -> None:
        """v7 ``adaptive`` line: one planner plan-rewrite decision (flushed
        -- decisions are rare and explain result layouts, so losing the
        tail is not acceptable)."""
        self._write_adaptive({
            "event": "adaptive",
            "version": FORMAT_VERSION,
            "time": event.time,
            "kind": event.kind,
            "shuffle_id": event.shuffle_id,
            "stage_id": event.stage_id,
            "job_id": event.job_id,
            "old_partitions": event.old_partitions,
            "new_partitions": event.new_partitions,
            "detail": event.detail,
        })

    def on_speculative_task_launched(self, event: SpeculativeTaskLaunched) -> None:
        """v7 ``adaptive`` line for a speculative twin launch."""
        self._write_adaptive({
            "event": "adaptive",
            "version": FORMAT_VERSION,
            "time": event.time,
            "kind": "speculation",
            "stage_id": event.stage_id,
            "job_id": event.job_id,
            "partition": event.partition,
            "original_executor": event.original_executor,
            "speculative_executor": event.speculative_executor,
            "elapsed_seconds": event.elapsed_seconds,
            "median_seconds": event.median_seconds,
        })

    def _write_adaptive(self, data: dict) -> None:
        fh = self._file()
        fh.write(json.dumps(data, separators=(",", ":")) + "\n")
        fh.flush()
        self.adaptive_written += 1

    def on_inference_batch_completed(self, event: InferenceBatchCompleted) -> None:
        """v8 ``inference`` line for one folded replicate batch."""
        self._write_inference({
            "event": "inference",
            "version": FORMAT_VERSION,
            "time": event.time,
            "kind": "batch",
            "method": event.method,
            "batch_width": event.batch_width,
            "replicates_total": event.replicates_total,
            "planned_replicates": event.planned_replicates,
            "sets_total": event.sets_total,
            "sets_converged": event.sets_converged,
            "replicates_saved": event.replicates_saved,
            "min_pvalue": event.min_pvalue,
            "early_stop": event.early_stop,
        })

    def on_snp_set_converged(self, event: SnpSetConverged) -> None:
        """v8 ``inference`` line for one SNP-set decision."""
        self._write_inference({
            "event": "inference",
            "version": FORMAT_VERSION,
            "time": event.time,
            "kind": "converged",
            "method": event.method,
            "set_index": event.set_index,
            "set_name": event.set_name,
            "status": event.status,
            "pvalue": event.pvalue,
            "ci_low": event.ci_low,
            "ci_high": event.ci_high,
            "replicates": event.replicates,
            "alpha": event.alpha,
        })

    def _write_inference(self, data: dict) -> None:
        """Flushed: decisions and batch milestones explain the final
        counts, so losing the tail is not acceptable."""
        fh = self._file()
        fh.write(json.dumps(data, separators=(",", ":")) + "\n")
        fh.flush()
        self.inference_written += 1

    def write_log(self, record: LogRecord) -> None:
        """Log-bus sink: append one v4 ``log`` record line (unflushed)."""
        data = {"event": "log", "version": FORMAT_VERSION}
        data.update(record.to_dict())
        self._file().write(json.dumps(data, separators=(",", ":")) + "\n")
        self.logs_written += 1

    def write_series(self, now: float, samples: list[tuple]) -> None:
        """Sampler tick sink: append one v5 ``series`` line (unflushed --
        same lost-tail tolerance as heartbeats)."""
        data = {
            "event": "series",
            "version": FORMAT_VERSION,
            "time": now,
            "samples": [[name, labels, value] for name, labels, value in samples],
        }
        self._file().write(json.dumps(data, separators=(",", ":")) + "\n")
        self.series_written += 1

    def write_alert(self, transition: dict) -> None:
        """Alert-manager sink: append one flushed v5 ``alert`` line."""
        data = {"event": "alert", "version": FORMAT_VERSION}
        data.update(transition)
        fh = self._file()
        fh.write(json.dumps(data, separators=(",", ":")) + "\n")
        fh.flush()
        self.alerts_written += 1

    def write_fleet(self, snapshot: dict) -> None:
        """Context-stop sink: append one flushed v6 ``fleet`` line (rare
        and forensic -- cross-job state the next driver cannot rebuild)."""
        data = {
            "event": "fleet",
            "version": FORMAT_VERSION,
            "snapshot": snapshot,
        }
        fh = self._file()
        fh.write(json.dumps(data, separators=(",", ":")) + "\n")
        fh.flush()
        self.fleet_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
