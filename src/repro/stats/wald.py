"""Wald and likelihood-ratio tests for the Cox model: the costly comparator.

The paper motivates the efficient score by noting that Wald/LRT "require
solving U_j(beta_j) = 0 ... for every SNP in the analysis", with numerical
root finding and convergence monitoring.  This module implements exactly
that: per-SNP Newton-Raphson maximization of the Cox partial likelihood,
so benchmarks can quantify the score test's advantage and tests can verify
first-order agreement for small effects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.stats.score.base import SurvivalPhenotype


class ConvergenceError(RuntimeError):
    """Newton-Raphson failed to converge for a SNP."""


@dataclass(frozen=True)
class CoxMleResult:
    """Per-SNP maximum partial-likelihood fit."""

    beta: np.ndarray  # (m,) MLEs
    information: np.ndarray  # (m,) observed information at the MLE
    wald: np.ndarray  # (m,) Wald statistics beta^2 * I(beta)
    lrt: np.ndarray  # (m,) likelihood-ratio statistics
    iterations: np.ndarray  # (m,) Newton iterations used
    converged: np.ndarray  # (m,) bool

    def wald_pvalues(self) -> np.ndarray:
        return sps.chi2.sf(self.wald, df=1)

    def lrt_pvalues(self) -> np.ndarray:
        return sps.chi2.sf(self.lrt, df=1)


class CoxPartialLikelihood:
    """Score / information / log-likelihood of one SNP's Cox model."""

    def __init__(self, phenotype: SurvivalPhenotype) -> None:
        self.phenotype = phenotype
        time = phenotype.time
        n = time.shape[0]
        self._order = np.argsort(-time, kind="stable")
        time_asc = np.sort(time)
        self._risk_counts = (n - np.searchsorted(time_asc, time, side="left")).astype(np.int64)
        self._event_mask = phenotype.event.astype(bool)

    def evaluate(self, g: np.ndarray, beta: float) -> tuple[float, float, float]:
        """(log-likelihood, score U(beta), information I(beta))."""
        g = np.asarray(g, dtype=np.float64)
        order = self._order
        eg = np.exp(beta * g)
        # prefix sums over descending-time order; entry b_i - 1 is the
        # risk-set sum for patient i (ties included)
        B = np.cumsum(eg[order])[self._risk_counts - 1]
        A = np.cumsum((g * eg)[order])[self._risk_counts - 1]
        C = np.cumsum((g * g * eg)[order])[self._risk_counts - 1]
        ev = self._event_mask
        loglik = float(np.sum(beta * g[ev] - np.log(B[ev])))
        score = float(np.sum(g[ev] - A[ev] / B[ev]))
        info = float(np.sum(C[ev] / B[ev] - (A[ev] / B[ev]) ** 2))
        return loglik, score, info


def cox_mle(
    phenotype: SurvivalPhenotype,
    genotypes: np.ndarray,
    max_iter: int = 25,
    tol: float = 1e-8,
    max_step: float = 5.0,
    raise_on_failure: bool = False,
) -> CoxMleResult:
    """Newton-Raphson Cox MLE for each SNP row of ``genotypes``.

    Mirrors the per-SNP optimization burden of the Wald/LRT approach:
    every iteration re-evaluates risk-set sums (O(n log n) here), and
    convergence must be monitored per SNP -- "corrective actions ... in
    case of failure of convergence" are step-halving and step clipping.
    """
    G = np.asarray(genotypes, dtype=np.float64)
    if G.ndim == 1:
        G = G[None, :]
    m = G.shape[0]
    pl = CoxPartialLikelihood(phenotype)
    beta = np.zeros(m)
    info_out = np.zeros(m)
    wald = np.zeros(m)
    lrt = np.zeros(m)
    iters = np.zeros(m, dtype=np.int64)
    ok = np.zeros(m, dtype=bool)

    for j in range(m):
        g = G[j]
        loglik0, _, _ = pl.evaluate(g, 0.0)
        b = 0.0
        loglik_prev = loglik0
        converged = False
        info = 0.0
        for it in range(1, max_iter + 1):
            loglik, score, info = pl.evaluate(g, b)
            if info <= 1e-12:
                # flat likelihood (e.g. monomorphic SNP): beta = 0 is the MLE
                converged = True
                iters[j] = it
                break
            step = score / info
            step = float(np.clip(step, -max_step, max_step))
            # step-halving: insist the likelihood does not decrease
            candidate = b + step
            loglik_new, _, _ = pl.evaluate(g, candidate)
            halvings = 0
            while loglik_new < loglik - 1e-12 and halvings < 10:
                step *= 0.5
                candidate = b + step
                loglik_new, _, _ = pl.evaluate(g, candidate)
                halvings += 1
            b = candidate
            iters[j] = it
            if abs(step) < tol or abs(loglik_new - loglik_prev) < tol:
                converged = True
                break
            loglik_prev = loglik_new
        if not converged and raise_on_failure:
            raise ConvergenceError(f"SNP row {j} did not converge in {max_iter} iterations")
        loglik_hat, _, info_hat = pl.evaluate(g, b)
        beta[j] = b
        info_out[j] = info_hat
        wald[j] = b * b * info_hat
        lrt[j] = max(0.0, 2.0 * (loglik_hat - loglik0))
        ok[j] = converged
    return CoxMleResult(beta, info_out, wald, lrt, iters, ok)


def score_test_statistics(phenotype: SurvivalPhenotype, genotypes: np.ndarray) -> np.ndarray:
    """Standardized score statistics ``U_j^2 / I_j(0)`` (chi-square_1).

    The no-optimization counterpart to :func:`cox_mle`: a single
    evaluation at beta = 0 per SNP.
    """
    G = np.asarray(genotypes, dtype=np.float64)
    if G.ndim == 1:
        G = G[None, :]
    pl = CoxPartialLikelihood(phenotype)
    out = np.zeros(G.shape[0])
    for j in range(G.shape[0]):
        _, score, info = pl.evaluate(G[j], 0.0)
        out[j] = score * score / info if info > 1e-12 else 0.0
    return out
