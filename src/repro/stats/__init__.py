"""Statistical machinery: efficient score statistics, SKAT, resampling.

Public surface:

- score models: :class:`~repro.stats.score.cox.CoxScoreModel`,
  :class:`~repro.stats.score.binomial.BinomialScoreModel`,
  :class:`~repro.stats.score.gaussian.GaussianScoreModel`;
- :func:`~repro.stats.skat.skat_statistics` aggregation;
- SNP weighting schemes in :mod:`repro.stats.weights`;
- resampling inference in :mod:`repro.stats.resampling`;
- asymptotic p-values in :mod:`repro.stats.asymptotic`;
- the Wald/LRT comparator in :mod:`repro.stats.wald`.
"""

from repro.stats.score.base import (
    BinaryPhenotype,
    QuantitativePhenotype,
    ScoreModel,
    SurvivalPhenotype,
)
from repro.stats.score.binomial import BinomialScoreModel
from repro.stats.score.cox import CoxScoreModel
from repro.stats.score.gaussian import GaussianScoreModel
from repro.stats.skat import skat_statistic, skat_statistics
from repro.stats.weights import beta_maf_weights, flat_weights, madsen_browning_weights

__all__ = [
    "BinaryPhenotype",
    "BinomialScoreModel",
    "CoxScoreModel",
    "GaussianScoreModel",
    "QuantitativePhenotype",
    "ScoreModel",
    "SurvivalPhenotype",
    "beta_maf_weights",
    "flat_weights",
    "madsen_browning_weights",
    "skat_statistic",
    "skat_statistics",
]
