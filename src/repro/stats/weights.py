"""SNP weighting schemes for SKAT aggregation.

The paper: "SNPs could be weighted by the quality of the genotyping
results, their relative allelic frequency, or by the probability that a
mutation at that locus is detrimental."  The standard frequency-based
choices are implemented here; arbitrary per-SNP quality weights are just an
array the caller supplies.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sps


def _check_maf(maf: np.ndarray) -> np.ndarray:
    arr = np.asarray(maf, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError("maf must be a vector")
    if np.any((arr < 0) | (arr > 1)):
        raise ValueError("minor allele frequencies must lie in [0, 1]")
    return arr


def flat_weights(n_snps: int) -> np.ndarray:
    """Unit weight for every SNP (the burden-free default)."""
    if n_snps < 1:
        raise ValueError("n_snps must be positive")
    return np.ones(n_snps)


def beta_maf_weights(maf, a: float = 1.0, b: float = 25.0) -> np.ndarray:
    """Wu et al. (2011) SKAT weights: ``Beta(maf; a, b)`` density.

    The default (1, 25) sharply up-weights rare variants.
    """
    arr = _check_maf(maf)
    return sps.beta.pdf(np.clip(arr, 1e-12, 1 - 1e-12), a, b)


def madsen_browning_weights(maf) -> np.ndarray:
    """Madsen-Browning weights ``1 / sqrt(maf * (1 - maf))``."""
    arr = np.clip(_check_maf(maf), 1e-8, 1 - 1e-8)
    return 1.0 / np.sqrt(arr * (1.0 - arr))


def estimate_maf(genotypes: np.ndarray) -> np.ndarray:
    """Empirical minor allele frequency per SNP from a (m, n) 0/1/2 matrix."""
    G = np.asarray(genotypes, dtype=np.float64)
    if G.ndim == 1:
        G = G[None, :]
    freq = G.mean(axis=1) / 2.0
    return np.minimum(freq, 1.0 - freq)
