"""SKAT statistics: weighted aggregation of marginal scores into SNP-sets.

Paper, Section II::

    S_k = sum_{j in I_k} w_j^2 * U_j^2

with ``I_1 ... I_K`` a partition of the SNPs.  The partition is represented
as a ``set_ids`` vector mapping each SNP index to its set index, which is
both compact and exactly the join structure Algorithm 1 shuffles.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse


def skat_statistic(scores: np.ndarray, weights: np.ndarray) -> float:
    """SKAT statistic for a single SNP-set given its members' scores."""
    scores = np.asarray(scores, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if scores.shape != weights.shape:
        raise ValueError("scores and weights must align")
    return float(np.sum((weights**2) * (scores**2)))


def validate_set_ids(set_ids: np.ndarray, n_sets: int, n_snps: int) -> np.ndarray:
    ids = np.asarray(set_ids)
    if ids.shape != (n_snps,):
        raise ValueError(f"set_ids must have shape ({n_snps},), got {ids.shape}")
    if not np.issubdtype(ids.dtype, np.integer):
        raise TypeError("set_ids must be integers")
    if ids.size and (ids.min() < 0 or ids.max() >= n_sets):
        raise ValueError("set_ids out of range")
    return ids


def skat_statistics(
    scores: np.ndarray,
    weights: np.ndarray,
    set_ids: np.ndarray,
    n_sets: int,
) -> np.ndarray:
    """SKAT statistics for every SNP-set.

    ``scores`` may be ``(J,)`` (one analysis) or ``(B, J)`` (a batch of
    resampling replicates); returns ``(K,)`` or ``(B, K)`` accordingly.
    """
    scores = np.asarray(scores, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    single = scores.ndim == 1
    if single:
        scores = scores[None, :]
    B, J = scores.shape
    if weights.shape != (J,):
        raise ValueError(f"weights must have shape ({J},), got {weights.shape}")
    ids = validate_set_ids(set_ids, n_sets, J)
    per_snp = (weights**2)[None, :] * scores**2
    if B == 1:
        out = np.bincount(ids, weights=per_snp[0], minlength=n_sets)[None, :]
    else:
        out = per_snp @ membership_matrix(ids, n_sets).T
        out = np.asarray(out)
    return out[0] if single else out


def membership_matrix(set_ids: np.ndarray, n_sets: int) -> sparse.csr_matrix:
    """Sparse (K, J) indicator matrix: row k marks the SNPs in set k."""
    J = set_ids.shape[0]
    data = np.ones(J)
    return sparse.csr_matrix((data, (set_ids, np.arange(J))), shape=(n_sets, J))


def set_sizes(set_ids: np.ndarray, n_sets: int) -> np.ndarray:
    return np.bincount(set_ids, minlength=n_sets)
