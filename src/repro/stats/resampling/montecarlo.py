"""Lin's (2005) Monte Carlo resampling for SKAT statistics.

Replicates are ``U~_j = sum_i Z_i * U_ij`` with ``Z_i ~ N(0, 1)``.  The
score-contribution matrix ``U`` is computed once and *reused* across all B
replicates -- the property SparkScore exploits by caching the U RDD
(Algorithm 3).  In matrix form a whole batch of replicates is one GEMM:
``scores_batch = Z_batch @ U.T``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.resampling.pvalues import empirical_pvalues
from repro.stats.skat import skat_statistics, validate_set_ids


@dataclass(frozen=True)
class ResamplingOutcome:
    """Observed statistics plus resampling exceedance evidence."""

    observed: np.ndarray  # (K,) observed SKAT statistics S_k^0
    exceed_counts: np.ndarray  # (K,) #{b : S~_k^b >= S_k^0}
    n_resamples: int

    def pvalues(self, method: str = "plugin") -> np.ndarray:
        return empirical_pvalues(self.exceed_counts, self.n_resamples, method)


class MonteCarloResampler:
    """Streams Monte Carlo replicate batches against fixed contributions."""

    def __init__(
        self,
        contributions: np.ndarray,
        weights: np.ndarray,
        set_ids: np.ndarray,
        n_sets: int,
    ) -> None:
        U = np.asarray(contributions, dtype=np.float64)
        if U.ndim != 2:
            raise ValueError("contributions must be (J, n)")
        self.U = U
        self.J, self.n = U.shape
        self.weights = np.asarray(weights, dtype=np.float64)
        if self.weights.shape != (self.J,):
            raise ValueError("weights must align with contributions rows")
        self.set_ids = validate_set_ids(set_ids, n_sets, self.J)
        self.n_sets = n_sets
        self.observed = skat_statistics(U.sum(axis=1), self.weights, self.set_ids, n_sets)

    def replicate_batch(self, z_batch: np.ndarray) -> np.ndarray:
        """SKAT statistics for a batch of multiplier vectors ``(b, n)``."""
        Z = np.asarray(z_batch, dtype=np.float64)
        if Z.ndim == 1:
            Z = Z[None, :]
        if Z.shape[1] != self.n:
            raise ValueError(f"multiplier vectors must have length {self.n}")
        scores = Z @ self.U.T  # (b, J)
        return skat_statistics(scores, self.weights, self.set_ids, self.n_sets)

    def run(
        self,
        n_resamples: int,
        seed: int,
        batch_size: int = 256,
        monitor=None,
    ) -> ResamplingOutcome:
        """Run B Monte Carlo replicates.

        ``monitor`` is an optional
        :class:`repro.obs.inference.ConvergenceMonitor`.  A passive monitor
        only observes (accumulation stays bit-identical); one carrying an
        early-stop policy may mask decided sets and end the loop early, in
        which case per-set estimates should be read from
        ``monitor.pvalues()`` (per-set denominators) rather than the
        outcome's shared ``n_resamples``.
        """
        from repro.stats.resampling.streams import mc_multiplier_batches

        counts = np.zeros(self.n_sets, dtype=np.int64)
        used = 0
        for z_batch in mc_multiplier_batches(self.n, n_resamples, seed, batch_size):
            stats = self.replicate_batch(z_batch)
            batch_counts = (stats >= self.observed[None, :]).sum(axis=0)
            width = stats.shape[0]
            used += width
            if monitor is None:
                counts += batch_counts
            else:
                counts += monitor.fold(batch_counts, width)
                if monitor.done:
                    break
        if monitor is not None:
            monitor.finish()
        return ResamplingOutcome(self.observed, counts, used)


def monte_carlo_skat(
    contributions: np.ndarray,
    weights: np.ndarray,
    set_ids: np.ndarray,
    n_sets: int,
    n_resamples: int,
    seed: int = 0,
    batch_size: int = 256,
    monitor=None,
) -> ResamplingOutcome:
    """One-shot convenience wrapper around :class:`MonteCarloResampler`."""
    sampler = MonteCarloResampler(contributions, weights, set_ids, n_sets)
    return sampler.run(n_resamples, seed, batch_size, monitor=monitor)
