"""Empirical p-values from resampling exceedance counts.

The paper uses the plug-in proportion: the fraction of resampled statistics
``S~_k`` found >= the observed ``S_k^0``.  The add-one estimator
``(count + 1) / (B + 1)`` never returns an impossible p-value of 0 and is
the conventional choice for multiple-testing pipelines; both are offered.
"""

from __future__ import annotations

import numpy as np


def empirical_pvalues(
    exceed_counts: np.ndarray,
    n_resamples: int,
    method: str = "plugin",
) -> np.ndarray:
    """p-values from counts of ``S~ >= S0``.

    ``method``: ``"plugin"`` (paper: count / B) or ``"add_one"``
    ((count + 1) / (B + 1)).
    """
    counts = np.asarray(exceed_counts, dtype=np.float64)
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    if np.any(counts < 0) or np.any(counts > n_resamples):
        raise ValueError("counts must lie in [0, n_resamples]")
    if method == "plugin":
        return counts / n_resamples
    if method == "add_one":
        return (counts + 1.0) / (n_resamples + 1.0)
    raise ValueError(f"unknown p-value method {method!r}")


def required_resamples(target_pvalue: float, relative_error: float = 0.1) -> int:
    """Resamples needed to estimate ``target_pvalue`` within relative error.

    The binomial coefficient of variation of the plug-in estimator is
    ``sqrt((1 - p) / (B * p))``; solving for B gives the planning rule the
    paper's precision remark implies ("the precision of the p-value is
    therefore directly tied to the number of resamplings performed").
    """
    if not 0 < target_pvalue < 1:
        raise ValueError("target_pvalue must be in (0, 1)")
    if relative_error <= 0:
        raise ValueError("relative_error must be positive")
    return int(np.ceil((1.0 - target_pvalue) / (target_pvalue * relative_error**2)))
