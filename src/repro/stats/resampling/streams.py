"""Deterministic resampling streams shared by local and engine runs.

Both the pure-NumPy reference implementation and the distributed engine
draw their Monte Carlo multipliers and permutations from these generators,
so given the same seed and batch size the two paths consume *identical*
random sequences -- making "engine result == local result" an exact
(bitwise-comparable) test oracle instead of a statistical one.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np


def mc_multiplier_batches(
    n_patients: int, n_resamples: int, seed: int, batch_size: int
) -> Iterator[np.ndarray]:
    """Yield ``(b, n)`` standard-normal multiplier batches totalling B rows."""
    if n_resamples < 0:
        raise ValueError("n_resamples must be >= 0")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    rng = np.random.default_rng(seed)
    remaining = n_resamples
    while remaining > 0:
        b = min(batch_size, remaining)
        yield rng.standard_normal((b, n_patients))
        remaining -= b


def permutation_stream(
    n_patients: int, n_resamples: int, seed: int
) -> Iterator[np.ndarray]:
    """Yield B independent permutations of ``range(n_patients)``."""
    if n_resamples < 0:
        raise ValueError("n_resamples must be >= 0")
    rng = np.random.default_rng(seed)
    for _ in range(n_resamples):
        yield rng.permutation(n_patients)


def permutation_batches(
    n_patients: int, n_resamples: int, seed: int, batch_size: int
) -> Iterator[np.ndarray]:
    """Yield ``(b, n)`` permutation batches totalling B rows.

    Draws each permutation sequentially from the same generator state as
    :func:`permutation_stream`, so a batched consumer sees the *identical*
    replicate sequence as an unbatched one -- batching changes scheduling,
    never statistics.
    """
    if n_resamples < 0:
        raise ValueError("n_resamples must be >= 0")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    rng = np.random.default_rng(seed)
    remaining = n_resamples
    while remaining > 0:
        b = min(batch_size, remaining)
        yield np.stack([rng.permutation(n_patients) for _ in range(b)])
        remaining -= b
