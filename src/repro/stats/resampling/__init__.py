"""Resampling inference for SKAT statistics: permutation and Monte Carlo."""

from repro.stats.resampling.montecarlo import MonteCarloResampler, monte_carlo_skat
from repro.stats.resampling.multipletesting import (
    MaxTResult,
    adjust_pvalues,
    westfall_young_maxt,
)
from repro.stats.resampling.permutation import PermutationResampler, permutation_skat
from repro.stats.resampling.pvalues import empirical_pvalues

__all__ = [
    "MaxTResult",
    "MonteCarloResampler",
    "PermutationResampler",
    "adjust_pvalues",
    "empirical_pvalues",
    "monte_carlo_skat",
    "permutation_skat",
    "westfall_young_maxt",
]
