"""Resampling-based multiple testing for variant-by-variant analyses.

The paper's introduction frames SNP-set tests against the backdrop of
variant-by-variant analyses over millions of marginal statistics, and
cites Westfall & Young (1993) [its ref. 40] for resampling-based p-value
adjustment.  This module implements that machinery on top of the same
Monte Carlo replicate stream used for SKAT:

- per-SNP empirical p-values from standardized marginal scores;
- **single-step maxT** family-wise error control: adjust by the null
  distribution of the *maximum* statistic across SNPs;
- **step-down maxT** (Westfall-Young): sharper, still strong FWER control
  under subset pivotality;
- classical comparators: Bonferroni, Holm, and Benjamini-Hochberg.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.resampling.streams import mc_multiplier_batches


@dataclass(frozen=True)
class MaxTResult:
    """Variant-level resampling inference."""

    statistics: np.ndarray  # (J,) standardized |T_j|
    raw_pvalues: np.ndarray  # (J,) per-SNP empirical p-values
    adjusted_pvalues: np.ndarray  # (J,) FWER-adjusted p-values
    n_resamples: int
    method: str

    def significant(self, alpha: float = 0.05) -> np.ndarray:
        """Row indices whose adjusted p-value is below ``alpha``."""
        return np.flatnonzero(self.adjusted_pvalues <= alpha)


def standardized_statistics(contributions: np.ndarray) -> np.ndarray:
    """``|T_j| = |U_j| / sd(U~_j)`` with the Monte Carlo null sd.

    Under Lin's resampling ``U~_j = sum_i Z_i U_ij`` has standard
    deviation ``sqrt(sum_i U_ij^2)``; monomorphic SNPs (sd 0) get T = 0.
    """
    U = np.asarray(contributions, dtype=np.float64)
    if U.ndim != 2:
        raise ValueError("contributions must be (J, n)")
    sd = np.sqrt((U**2).sum(axis=1))
    scores = U.sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(sd > 0, np.abs(scores) / sd, 0.0)
    return t


def westfall_young_maxt(
    contributions: np.ndarray,
    n_resamples: int,
    seed: int = 0,
    batch_size: int = 64,
    step_down: bool = True,
    monitor=None,
) -> MaxTResult:
    """Westfall-Young maxT adjustment via Monte Carlo replicates.

    ``step_down=True`` gives the classic step-down procedure: SNPs are
    ordered by decreasing statistic; SNP (j) is compared against the
    running maximum over the *remaining* hypotheses, with monotonicity
    enforced.  ``step_down=False`` is the single-step variant (compare
    every SNP against the global maximum).

    ``monitor`` is an optional
    :class:`repro.obs.inference.ConvergenceMonitor` fed the *adjusted*
    exceedance counts per batch.  Per-SNP masking is disabled here even
    under an early-stop policy -- step-down adjustment needs one common
    denominator across SNPs -- so the policy only stops the whole loop
    once every SNP's adjusted p-value CI is decisive.
    """
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    U = np.asarray(contributions, dtype=np.float64)
    if U.ndim != 2:
        raise ValueError("contributions must be (J, n)")
    J, n = U.shape
    sd = np.sqrt((U**2).sum(axis=1))
    safe_sd = np.where(sd > 0, sd, 1.0)
    observed = standardized_statistics(U)
    if monitor is not None and monitor.policy is not None:
        monitor.policy.mask_converged = False

    order = np.argsort(-observed, kind="stable")  # decreasing statistics
    raw_exceed = np.zeros(J, dtype=np.int64)
    adj_exceed = np.zeros(J, dtype=np.int64)
    used = 0

    for z_batch in mc_multiplier_batches(n, n_resamples, seed, batch_size):
        replicates = np.abs(z_batch @ U.T) / safe_sd[None, :]  # (b, J)
        replicates[:, sd == 0] = 0.0
        raw_exceed += (replicates >= observed[None, :]).sum(axis=0)
        if step_down:
            # successive maxima over the ordered tail: q_(j) = max over
            # hypotheses ranked j..J (computed right-to-left)
            tail_max = np.maximum.accumulate(replicates[:, order[::-1]], axis=1)[:, ::-1]
            batch_adj = np.zeros(J, dtype=np.int64)
            batch_adj[order] = (tail_max >= observed[order][None, :]).sum(axis=0)
        else:
            global_max = replicates.max(axis=1)
            batch_adj = (global_max[:, None] >= observed[None, :]).sum(axis=0)
        adj_exceed += batch_adj
        used += replicates.shape[0]
        if monitor is not None:
            monitor.fold(batch_adj, replicates.shape[0])
            if monitor.done:
                break
    if monitor is not None:
        monitor.finish()

    raw = (raw_exceed + 1.0) / (used + 1.0)
    adjusted = (adj_exceed + 1.0) / (used + 1.0)
    if step_down:
        # enforce monotonicity in the statistic ordering
        adjusted[order] = np.maximum.accumulate(adjusted[order])
    return MaxTResult(
        statistics=observed,
        raw_pvalues=raw,
        adjusted_pvalues=np.minimum(adjusted, 1.0),
        n_resamples=used,
        method="maxT step-down" if step_down else "maxT single-step",
    )


def adjust_pvalues(pvalues: np.ndarray, method: str = "holm") -> np.ndarray:
    """Classical p-value adjustments: bonferroni, holm, or bh (FDR)."""
    p = np.asarray(pvalues, dtype=np.float64)
    if p.ndim != 1:
        raise ValueError("pvalues must be a vector")
    if np.any((p < 0) | (p > 1)):
        raise ValueError("pvalues must lie in [0, 1]")
    m = p.shape[0]
    if m == 0:
        return p.copy()
    if method == "bonferroni":
        return np.minimum(p * m, 1.0)
    order = np.argsort(p, kind="stable")
    out = np.empty_like(p)
    if method == "holm":
        scaled = p[order] * (m - np.arange(m))
        out[order] = np.minimum(np.maximum.accumulate(scaled), 1.0)
        return out
    if method == "bh":
        scaled = p[order] * m / (np.arange(m) + 1)
        out[order] = np.minimum(np.minimum.accumulate(scaled[::-1])[::-1], 1.0)
        return out
    raise ValueError(f"unknown adjustment {method!r}")
