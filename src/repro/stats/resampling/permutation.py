"""Permutation resampling for SKAT statistics.

Each replicate shuffles the phenotype pairs among patients and recomputes
the marginal scores from scratch (Algorithm 2 is the iterated Algorithm 1).
Unlike the Monte Carlo method nothing can be reused across replicates --
which is exactly the computational contrast the paper's Experiment A
measures.
"""

from __future__ import annotations

import numpy as np

from repro.stats.resampling.montecarlo import ResamplingOutcome
from repro.stats.score.base import ScoreModel
from repro.stats.skat import skat_statistics, validate_set_ids


class PermutationResampler:
    """Recomputes scores under phenotype permutations."""

    def __init__(
        self,
        model: ScoreModel,
        genotypes: np.ndarray,
        weights: np.ndarray,
        set_ids: np.ndarray,
        n_sets: int,
    ) -> None:
        G = np.asarray(genotypes, dtype=np.float64)
        if G.ndim != 2:
            raise ValueError("genotypes must be (J, n)")
        if G.shape[1] != model.n_patients:
            raise ValueError("genotype columns must match model patients")
        self.model = model
        self.G = G
        self.J, self.n = G.shape
        self.weights = np.asarray(weights, dtype=np.float64)
        if self.weights.shape != (self.J,):
            raise ValueError("weights must align with genotype rows")
        self.set_ids = validate_set_ids(set_ids, n_sets, self.J)
        self.n_sets = n_sets
        self.observed = skat_statistics(model.scores(G), self.weights, self.set_ids, n_sets)

    def replicate(self, perm: np.ndarray) -> np.ndarray:
        """SKAT statistics under one permutation of the phenotype pairs."""
        perm = np.asarray(perm)
        if perm.shape != (self.n,) or sorted(perm.tolist()) != list(range(self.n)):
            raise ValueError("perm must be a permutation of range(n)")
        scores = self.model.permuted(perm).scores(self.G)
        return skat_statistics(scores, self.weights, self.set_ids, self.n_sets)

    def run(
        self,
        n_resamples: int,
        seed: int,
        vectorized: str | bool = "auto",
        batch_size: int = 64,
        monitor=None,
    ) -> ResamplingOutcome:
        """Run B permutation replicates.

        ``vectorized`` controls the GEMM fast path available for models
        whose permutation commutes with the null fit (GLM scores without
        covariates): ``"auto"`` uses it when supported, ``True`` requires
        it (raises otherwise), ``False`` forces the per-replicate
        recompute.  Both paths consume the same permutation stream, so
        results are interchangeable up to float summation order.

        ``monitor`` is an optional
        :class:`repro.obs.inference.ConvergenceMonitor`; see
        :meth:`MonteCarloResampler.run` for the passive/early-stop
        contract.  Both paths fold into it per batch (the per-replicate
        path folds one replicate at a time).
        """
        from repro.stats.resampling.streams import permutation_stream

        if vectorized not in ("auto", True, False):
            raise ValueError("vectorized must be 'auto', True, or False")
        parts = None
        if vectorized in ("auto", True):
            getter = getattr(self.model, "permutation_invariant_parts", None)
            parts = getter(self.G) if getter is not None else None
            if parts is None and vectorized is True:
                raise ValueError(
                    "model does not support the vectorized permutation path "
                    "(needs a covariate-free GLM score model)"
                )

        counts = np.zeros(self.n_sets, dtype=np.int64)
        used = 0
        stream = permutation_stream(self.n, n_resamples, seed)
        if parts is not None:
            G_adj, residuals = parts
            batch: list[np.ndarray] = []
            stopped = False
            for perm in stream:
                batch.append(residuals[perm])
                if len(batch) == batch_size:
                    used += len(batch)
                    if self._fold(counts, self._count_batch(G_adj, np.vstack(batch)),
                                  len(batch), monitor):
                        stopped = True
                        break
                    batch = []
            if batch and not stopped:
                used += len(batch)
                self._fold(counts, self._count_batch(G_adj, np.vstack(batch)),
                           len(batch), monitor)
        else:
            for perm in stream:
                stats = self.replicate(perm)
                used += 1
                if self._fold(counts, (stats >= self.observed).astype(np.int64),
                              1, monitor):
                    break
        if monitor is not None:
            monitor.finish()
        return ResamplingOutcome(self.observed, counts, used)

    def _fold(self, counts, batch_counts, width, monitor) -> bool:
        """Accumulate one batch; returns True when the monitor says stop."""
        if monitor is None:
            counts += batch_counts
            return False
        counts += monitor.fold(batch_counts, width)
        return monitor.done

    def _count_batch(self, G_adj: np.ndarray, permuted_residuals: np.ndarray) -> np.ndarray:
        scores = permuted_residuals @ G_adj.T  # (b, J)
        stats = skat_statistics(scores, self.weights, self.set_ids, self.n_sets)
        return (stats >= self.observed[None, :]).sum(axis=0)


def permutation_skat(
    model: ScoreModel,
    genotypes: np.ndarray,
    weights: np.ndarray,
    set_ids: np.ndarray,
    n_sets: int,
    n_resamples: int,
    seed: int = 0,
    monitor=None,
) -> ResamplingOutcome:
    """One-shot convenience wrapper around :class:`PermutationResampler`."""
    sampler = PermutationResampler(model, genotypes, weights, set_ids, n_sets)
    return sampler.run(n_resamples, seed, monitor=monitor)
