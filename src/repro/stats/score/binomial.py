"""Binomial (logistic) efficient score for case/control phenotypes."""

from __future__ import annotations

import numpy as np

from repro.stats.score.base import BinaryPhenotype, ScoreModel
from repro.stats.score.glm import fit_binomial_null, project_out_covariates


class BinomialScoreModel(ScoreModel):
    """Score contributions ``U_ij = (Y_i - mu_hat_i) * G_adj_ij``.

    The null model (intercept + covariates) is fit once by IRLS.  With
    ``adjust_genotypes=True`` (default) genotypes are projected orthogonal
    to the covariate space, giving the proper efficient score; without
    covariates this reduces to weighted centering.
    """

    def __init__(self, phenotype: BinaryPhenotype, adjust_genotypes: bool = True) -> None:
        self.phenotype = phenotype
        self.adjust_genotypes = adjust_genotypes
        self._fit = fit_binomial_null(phenotype.y, phenotype.covariates)
        self._residuals = phenotype.y - self._fit.mu

    @property
    def n_patients(self) -> int:
        return self.phenotype.n

    @property
    def fitted_means(self) -> np.ndarray:
        return self._fit.mu

    def contributions(self, genotypes: np.ndarray) -> np.ndarray:
        block = self._check_block(genotypes)
        if self.adjust_genotypes:
            block = project_out_covariates(block, self._fit)
        return block * self._residuals[None, :]

    def permuted(self, perm: np.ndarray) -> "BinomialScoreModel":
        # permutation shuffles outcomes over patients; covariates travel
        # with the outcome (the pairs are shuffled jointly, as in the paper)
        return BinomialScoreModel(self.phenotype.permuted(perm), self.adjust_genotypes)

    def permutation_invariant_parts(self, genotypes: np.ndarray):
        """(adjusted genotypes, residuals) for the GEMM permutation path.

        Valid only without covariates: the intercept-only IRLS fit depends
        on ``y`` solely through its mean, which permutation preserves, so
        permuted residuals are exactly the permuted residual vector.
        """
        if self.phenotype.covariates is not None:
            return None
        block = self._check_block(genotypes)
        if self.adjust_genotypes:
            block = project_out_covariates(block, self._fit)
        return block, self._residuals.copy()
