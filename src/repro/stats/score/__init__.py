"""Efficient score statistics for genomic association testing."""

from repro.stats.score.base import (
    BinaryPhenotype,
    QuantitativePhenotype,
    ScoreModel,
    SurvivalPhenotype,
)
from repro.stats.score.binomial import BinomialScoreModel
from repro.stats.score.cox import CoxScoreModel, cox_contributions_naive
from repro.stats.score.gaussian import GaussianScoreModel

__all__ = [
    "BinaryPhenotype",
    "BinomialScoreModel",
    "CoxScoreModel",
    "GaussianScoreModel",
    "QuantitativePhenotype",
    "ScoreModel",
    "SurvivalPhenotype",
    "cox_contributions_naive",
]
