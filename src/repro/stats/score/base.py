"""Phenotype containers and the score-model interface.

A *score model* encapsulates a phenotype and its null model.  Its job is to
produce the per-patient score contributions ``U[j, i]`` for a block of SNP
genotypes: ``U_j = sum_i U[j, i]`` is the marginal efficient score for SNP
``j`` (paper, Section II).  The contributions matrix -- not just its row
sums -- is what Monte Carlo resampling reuses
(``U~_j = sum_i Z_i U[j, i]``, Lin 2005), which is why SparkScore caches it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np


def _as_1d_float(values, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


@dataclass(frozen=True)
class SurvivalPhenotype:
    """Censored time-to-event outcome: ``(Y_i, Delta_i)`` pairs.

    ``time`` is the observed time (death or last follow-up); ``event`` is 1
    for an observed death, 0 for censoring (paper, Section II).
    """

    time: np.ndarray
    event: np.ndarray

    def __post_init__(self) -> None:
        time = _as_1d_float(self.time, "time")
        event = np.asarray(self.event)
        if event.shape != time.shape:
            raise ValueError(f"time {time.shape} and event {event.shape} shapes differ")
        event = event.astype(np.float64)
        if not np.isin(event, (0.0, 1.0)).all():
            raise ValueError("event indicators must be 0 or 1")
        if np.any(time < 0):
            raise ValueError("times must be non-negative")
        object.__setattr__(self, "time", time)
        object.__setattr__(self, "event", event)

    @property
    def n(self) -> int:
        return self.time.shape[0]

    def permuted(self, perm: np.ndarray) -> "SurvivalPhenotype":
        """Shuffle the (time, event) pairs among patients jointly."""
        return SurvivalPhenotype(self.time[perm], self.event[perm])

    def pairs(self) -> list[tuple[float, int]]:
        """(Y_i, Delta_i) tuples -- the broadcast payload in Algorithm 1."""
        return [(float(t), int(e)) for t, e in zip(self.time, self.event)]


@dataclass(frozen=True)
class BinaryPhenotype:
    """Case/control outcome with optional baseline covariates."""

    y: np.ndarray
    covariates: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        y = np.asarray(self.y, dtype=np.float64)
        if y.ndim != 1 or y.size == 0:
            raise ValueError("y must be a non-empty vector")
        if not np.isin(y, (0.0, 1.0)).all():
            raise ValueError("binary outcome must be 0/1")
        object.__setattr__(self, "y", y)
        if self.covariates is not None:
            X = np.atleast_2d(np.asarray(self.covariates, dtype=np.float64))
            if X.shape[0] != y.shape[0]:
                raise ValueError("covariates rows must match y length")
            object.__setattr__(self, "covariates", X)

    @property
    def n(self) -> int:
        return self.y.shape[0]

    def permuted(self, perm: np.ndarray) -> "BinaryPhenotype":
        cov = self.covariates[perm] if self.covariates is not None else None
        return BinaryPhenotype(self.y[perm], cov)


@dataclass(frozen=True)
class QuantitativePhenotype:
    """Continuous outcome (e.g. expression level for eQTL) with covariates."""

    y: np.ndarray
    covariates: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        y = _as_1d_float(self.y, "y")
        object.__setattr__(self, "y", y)
        if self.covariates is not None:
            X = np.atleast_2d(np.asarray(self.covariates, dtype=np.float64))
            if X.shape[0] != y.shape[0]:
                raise ValueError("covariates rows must match y length")
            object.__setattr__(self, "covariates", X)

    @property
    def n(self) -> int:
        return self.y.shape[0]

    def permuted(self, perm: np.ndarray) -> "QuantitativePhenotype":
        cov = self.covariates[perm] if self.covariates is not None else None
        return QuantitativePhenotype(self.y[perm], cov)


class ScoreModel(abc.ABC):
    """Produces per-patient score contributions for SNP genotype blocks."""

    @property
    @abc.abstractmethod
    def n_patients(self) -> int:
        """Number of patients (columns of every genotype block)."""

    @abc.abstractmethod
    def contributions(self, genotypes: np.ndarray) -> np.ndarray:
        """Per-patient score contributions.

        ``genotypes`` is SNP-major ``(m, n)``: ``m`` SNPs by ``n`` patients.
        Returns ``U`` of the same shape with ``U[j, i]`` = patient ``i``'s
        contribution to SNP ``j``'s score.
        """

    @abc.abstractmethod
    def permuted(self, perm: np.ndarray) -> "ScoreModel":
        """A new model with the phenotype shuffled among patients."""

    def scores(self, genotypes: np.ndarray) -> np.ndarray:
        """Marginal scores ``U_j = sum_i U[j, i]`` for a block of SNPs."""
        return self.contributions(genotypes).sum(axis=1)

    def _check_block(self, genotypes: np.ndarray) -> np.ndarray:
        block = np.asarray(genotypes, dtype=np.float64)
        if block.ndim == 1:
            block = block[None, :]
        if block.ndim != 2 or block.shape[1] != self.n_patients:
            raise ValueError(
                f"genotype block must be (m, {self.n_patients}), got {block.shape}"
            )
        return block
