"""Gaussian (linear model) efficient score for quantitative phenotypes.

Used for eQTL-style analyses (paper abstract: "can be readily extended to
... expression quantitative trait loci (eQTL) ... studies").
"""

from __future__ import annotations

import numpy as np

from repro.stats.score.base import QuantitativePhenotype, ScoreModel
from repro.stats.score.glm import fit_gaussian_null, project_out_covariates


class GaussianScoreModel(ScoreModel):
    """Score contributions ``U_ij = (Y_i - mu_hat_i) * G_adj_ij / sigma^2``."""

    def __init__(self, phenotype: QuantitativePhenotype, adjust_genotypes: bool = True) -> None:
        self.phenotype = phenotype
        self.adjust_genotypes = adjust_genotypes
        self._fit = fit_gaussian_null(phenotype.y, phenotype.covariates)
        self._residuals = (phenotype.y - self._fit.mu) / self._fit.dispersion

    @property
    def n_patients(self) -> int:
        return self.phenotype.n

    @property
    def sigma2(self) -> float:
        return self._fit.dispersion

    def contributions(self, genotypes: np.ndarray) -> np.ndarray:
        block = self._check_block(genotypes)
        if self.adjust_genotypes:
            block = project_out_covariates(block, self._fit)
        return block * self._residuals[None, :]

    def permuted(self, perm: np.ndarray) -> "GaussianScoreModel":
        return GaussianScoreModel(self.phenotype.permuted(perm), self.adjust_genotypes)

    def permutation_invariant_parts(self, genotypes: np.ndarray):
        """(adjusted genotypes, residual vector) when permutation commutes.

        With an intercept-only null model, permuting the outcome permutes
        the residuals and leaves the genotype adjustment unchanged, so
        permutation scores are ``G_adj @ r[perm]`` -- one GEMM per batch.
        With covariates the null fit changes per permutation; returns None
        and callers fall back to the per-replicate path.
        """
        if self.phenotype.covariates is not None:
            return None
        block = self._check_block(genotypes)
        if self.adjust_genotypes:
            block = project_out_covariates(block, self._fit)
        return block, self._residuals.copy()
