"""The Cox efficient score (paper, Section II, "Statistical Model").

Under the marginal null hypothesis for SNP ``j``::

    U_ij = Delta_i * (G_ij - a_ij / b_i)
    a_ij = sum_l 1(Y_l >= Y_i) * G_lj     (risk-set genotype sum)
    b_i  = sum_l 1(Y_l >= Y_i)            (risk-set size; SNP-invariant)

``b_i`` does not depend on the SNP and is computed once per analysis,
exactly as the paper notes.  The vectorized implementation sorts patients
by descending survival time once; risk-set sums for every SNP in a block
are then prefix sums, giving O(m*n + n log n) per block instead of the
O(m*n^2) of the defining formula (kept in
:func:`cox_contributions_naive` as the correctness oracle).
"""

from __future__ import annotations

import numpy as np

from repro.stats.score.base import ScoreModel, SurvivalPhenotype


class CoxScoreModel(ScoreModel):
    """Efficient score contributions for a censored survival phenotype."""

    def __init__(self, phenotype: SurvivalPhenotype) -> None:
        self.phenotype = phenotype
        time = phenotype.time
        n = time.shape[0]
        # descending-time order; stable so tied patients keep input order
        self._order = np.argsort(-time, kind="stable")
        # b_i = #{l : Y_l >= Y_i} -- counts of at-risk patients, ties included
        time_asc = np.sort(time)
        self._risk_counts = (n - np.searchsorted(time_asc, time, side="left")).astype(np.int64)
        self._event = phenotype.event

    @property
    def n_patients(self) -> int:
        return self.phenotype.n

    @property
    def risk_set_sizes(self) -> np.ndarray:
        """The SNP-invariant ``b_i`` vector (computed once)."""
        return self._risk_counts

    def contributions(self, genotypes: np.ndarray) -> np.ndarray:
        block = self._check_block(genotypes)
        # prefix sums over patients sorted by descending time: column
        # (b_i - 1) of the cumulative sum is exactly a_ij
        prefix = np.cumsum(block[:, self._order], axis=1)
        risk_sums = prefix[:, self._risk_counts - 1]
        return self._event * (block - risk_sums / self._risk_counts)

    def permuted(self, perm: np.ndarray) -> "CoxScoreModel":
        return CoxScoreModel(self.phenotype.permuted(perm))


def cox_contributions_naive(
    phenotype: SurvivalPhenotype, genotypes: np.ndarray
) -> np.ndarray:
    """Direct per-definition O(m*n^2) computation; test oracle only."""
    G = np.asarray(genotypes, dtype=np.float64)
    if G.ndim == 1:
        G = G[None, :]
    time, event = phenotype.time, phenotype.event
    n = time.shape[0]
    m = G.shape[0]
    U = np.zeros((m, n))
    for i in range(n):
        at_risk = time >= time[i]
        b_i = at_risk.sum()
        for j in range(m):
            a_ij = G[j, at_risk].sum()
            U[j, i] = event[i] * (G[j, i] - a_ij / b_i)
    return U
