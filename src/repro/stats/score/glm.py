"""Null-model fitting shared by the GLM score models.

Both the binomial (logistic) and Gaussian (linear) score models fit a null
model containing only the intercept and baseline covariates, then form
score contributions from the residuals:

    U_ij = (Y_i - mu_hat_i) * G_adj_ij

where ``G_adj`` is the genotype optionally projected orthogonal to the
covariate space (the textbook efficient score; the paper's plain GWAS runs
have no covariates, in which case projection reduces to centering by the
fitted mean).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class NullModelError(RuntimeError):
    """The null model could not be fit (separation, singular design, ...)."""


def design_matrix(n: int, covariates: np.ndarray | None) -> np.ndarray:
    """Intercept column plus covariates."""
    if covariates is None:
        return np.ones((n, 1))
    X = np.atleast_2d(np.asarray(covariates, dtype=np.float64))
    if X.shape[0] != n:
        raise ValueError("covariate rows must match number of patients")
    return np.column_stack([np.ones(n), X])


@dataclass(frozen=True)
class NullFit:
    """A fitted null model: means, working weights, and the design."""

    mu: np.ndarray  # fitted means
    weights: np.ndarray  # IRLS working weights w_i (variance function)
    X: np.ndarray  # design matrix (n, p)
    dispersion: float  # phi: 1 for binomial, sigma^2 for gaussian


def fit_gaussian_null(y: np.ndarray, covariates: np.ndarray | None) -> NullFit:
    """Ordinary least squares null fit."""
    X = design_matrix(y.shape[0], covariates)
    beta, *_ = np.linalg.lstsq(X, y, rcond=None)
    mu = X @ beta
    resid = y - mu
    dof = max(1, y.shape[0] - X.shape[1])
    sigma2 = float(resid @ resid) / dof
    scale = max(1.0, float(y @ y) / max(1, y.shape[0]))
    if sigma2 <= 1e-12 * scale:
        sigma2 = 1.0  # degenerate constant outcome: scores are all zero anyway
    return NullFit(mu=mu, weights=np.ones_like(y), X=X, dispersion=sigma2)


def fit_binomial_null(
    y: np.ndarray,
    covariates: np.ndarray | None,
    max_iter: int = 50,
    tol: float = 1e-10,
) -> NullFit:
    """Logistic-regression null fit via IRLS (Newton-Raphson)."""
    X = design_matrix(y.shape[0], covariates)
    n, p = X.shape
    beta = np.zeros(p)
    # sensible intercept start: logit of the observed rate, clipped
    rate = float(np.clip(y.mean(), 1e-6, 1 - 1e-6))
    beta[0] = np.log(rate / (1 - rate))
    for _ in range(max_iter):
        eta = X @ beta
        mu = 1.0 / (1.0 + np.exp(-eta))
        w = mu * (1.0 - mu)
        if np.all(w < 1e-12):
            raise NullModelError("complete separation: working weights vanished")
        grad = X.T @ (y - mu)
        hess = X.T @ (X * w[:, None])
        try:
            step = np.linalg.solve(hess, grad)
        except np.linalg.LinAlgError as exc:
            raise NullModelError("singular information matrix in IRLS") from exc
        beta = beta + step
        if np.max(np.abs(step)) < tol:
            break
    else:
        raise NullModelError(f"IRLS did not converge in {max_iter} iterations")
    eta = X @ beta
    mu = 1.0 / (1.0 + np.exp(-eta))
    return NullFit(mu=mu, weights=mu * (1.0 - mu), X=X, dispersion=1.0)


def project_out_covariates(block: np.ndarray, fit: NullFit) -> np.ndarray:
    """Weighted projection of genotype rows orthogonal to the design.

    ``G_adj = G - (G W X) (X' W X)^{-1} X'`` applied row-wise; with an
    intercept-only design this is centering at the weighted mean.
    """
    X, w = fit.X, fit.weights
    XtWX = X.T @ (X * w[:, None])
    try:
        XtWX_inv = np.linalg.inv(XtWX)
    except np.linalg.LinAlgError as exc:
        raise NullModelError("singular X'WX in covariate projection") from exc
    # block: (m, n); coef: (m, p)
    coef = (block * w[None, :]) @ X @ XtWX_inv
    return block - coef @ X.T
