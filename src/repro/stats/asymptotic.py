"""Asymptotic p-values for SKAT statistics.

Under Lin's Monte Carlo resampling distribution, a replicate statistic is

    S~_k = Z' (U_w U_w') Z,   U_w = diag-row-scaled contributions

a quadratic form in iid standard normals, i.e. a mixture
``sum_r lambda_r chi^2_1`` with ``lambda_r`` the eigenvalues of the Gram
matrix of the weighted contributions.  Three tail approximations are
implemented, in increasing accuracy/cost:

- :func:`pvalue_satterthwaite` -- two-moment scaled chi-square;
- :func:`pvalue_liu` -- Liu, Tang & Zhang (2009) four-moment matching;
- :func:`pvalue_imhof` -- Imhof (1961) exact numerical inversion.

These are the "asymptotics" alternative the paper's introduction contrasts
with resampling; agreement with large-B Monte Carlo is a correctness oracle
for the whole pipeline.
"""

from __future__ import annotations

import warnings

import numpy as np
from scipy import integrate
from scipy import stats as sps

from repro.stats.skat import validate_set_ids

__all__ = [
    "skat_mixture_eigenvalues",
    "pvalue_satterthwaite",
    "pvalue_liu",
    "pvalue_imhof",
    "skat_asymptotic_pvalues",
]


def skat_mixture_eigenvalues(contributions: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Eigenvalues of the weighted-contribution Gram matrix.

    ``contributions`` is the (m, n) U matrix for the SNPs of one set and
    ``weights`` their (m,) weights.  Works on whichever Gram matrix is
    smaller (m x m or n x n); the nonzero spectra coincide.
    """
    U = np.asarray(contributions, dtype=np.float64)
    if U.ndim != 2:
        raise ValueError("contributions must be 2-D")
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (U.shape[0],):
        raise ValueError("weights must align with contribution rows")
    Uw = U * w[:, None]
    m, n = Uw.shape
    gram = Uw @ Uw.T if m <= n else Uw.T @ Uw
    lam = np.linalg.eigvalsh(gram)
    lam = lam[lam > max(1e-12, 1e-10 * lam.max(initial=0.0))]
    return lam[::-1]


def pvalue_satterthwaite(statistic: float, lam: np.ndarray) -> float:
    """Two-moment approximation: match to ``a * chi^2_g``."""
    lam = np.asarray(lam, dtype=np.float64)
    if lam.size == 0:
        return 1.0
    s1 = lam.sum()
    s2 = (lam**2).sum()
    a = s2 / s1
    g = s1**2 / s2
    return float(sps.chi2.sf(statistic / a, g))


def pvalue_liu(statistic: float, lam: np.ndarray) -> float:
    """Liu-Tang-Zhang (2009) four-moment chi-square approximation."""
    lam = np.asarray(lam, dtype=np.float64)
    if lam.size == 0:
        return 1.0
    c1 = lam.sum()
    c2 = (lam**2).sum()
    c3 = (lam**3).sum()
    c4 = (lam**4).sum()
    s1 = c3 / c2**1.5
    s2 = c4 / c2**2
    mu_q = c1
    sigma_q = np.sqrt(2.0 * c2)
    t_star = (statistic - mu_q) / sigma_q
    if s1**2 > s2:
        a = 1.0 / (s1 - np.sqrt(s1**2 - s2))
        delta = s1 * a**3 - a**2
        ell = a**2 - 2.0 * delta
    else:
        delta = 0.0
        ell = 1.0 / s2
    mu_x = ell + delta
    sigma_x = np.sqrt(2.0) * np.sqrt(ell + 2.0 * delta)
    x = t_star * sigma_x + mu_x
    return float(sps.ncx2.sf(x, df=ell, nc=delta)) if delta > 0 else float(sps.chi2.sf(x, ell))


def pvalue_imhof(statistic: float, lam: np.ndarray, limit: int = 400) -> float:
    """Imhof (1961) exact tail probability via numerical inversion.

    Accurate to roughly 1e-4 absolute (the integrand is oscillatory with a
    slowly decaying tail for few eigenvalues); use :func:`pvalue_liu` when
    speed matters and this when accuracy matters.
    """
    lam = np.asarray(lam, dtype=np.float64)
    if lam.size == 0:
        return 1.0

    def theta(u: float) -> float:
        return 0.5 * (np.sum(np.arctan(lam * u)) - statistic * u)

    def rho(u: float) -> float:
        return np.prod((1.0 + (lam * u) ** 2) ** 0.25)

    def integrand(u: float) -> float:
        if u == 0.0:
            return 0.5 * (lam.sum() - statistic)
        return np.sin(theta(u)) / (u * rho(u))

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", integrate.IntegrationWarning)
        value, _err = integrate.quad(integrand, 0.0, np.inf, limit=limit)
    p = 0.5 + value / np.pi
    return float(min(1.0, max(0.0, p)))


_METHODS = {
    "satterthwaite": pvalue_satterthwaite,
    "liu": pvalue_liu,
    "imhof": pvalue_imhof,
}


def skat_asymptotic_pvalues(
    contributions: np.ndarray,
    weights: np.ndarray,
    set_ids: np.ndarray,
    n_sets: int,
    observed: np.ndarray | None = None,
    method: str = "liu",
) -> np.ndarray:
    """Asymptotic p-value for each SNP-set's SKAT statistic.

    ``contributions`` is the full (J, n) U matrix; each set's mixture
    spectrum is computed from its member rows.  ``observed`` defaults to
    the SKAT statistics implied by ``contributions``.
    """
    if method not in _METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {sorted(_METHODS)}")
    tail = _METHODS[method]
    U = np.asarray(contributions, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    ids = validate_set_ids(set_ids, n_sets, U.shape[0])
    if observed is None:
        from repro.stats.skat import skat_statistics

        observed = skat_statistics(U.sum(axis=1), w, ids, n_sets)
    observed = np.asarray(observed, dtype=np.float64)
    out = np.ones(n_sets)
    for k in range(n_sets):
        members = np.flatnonzero(ids == k)
        if members.size == 0:
            continue
        lam = skat_mixture_eigenvalues(U[members], w[members])
        out[k] = tail(float(observed[k]), lam)
    return out
