"""Power and sample-size calculations for score-based SNP association tests.

Follows the approach of Owzar, Li, Cox & Jung (2012) -- the paper's
refs. [25]/[26] -- for censored time-to-event outcomes: under a local
alternative with per-allele log hazard ratio ``beta``, the standardized
Cox score statistic is asymptotically ``N(beta * sqrt(n * I1), 1)`` where
``I1`` is the unit (per-patient) Fisher information.  For an additive SNP
with allele frequency ``p`` and event probability ``d`` (the expected
fraction of uncensored patients), ``I1 = d * 2p(1-p)``.

These closed forms answer the planning questions a resampling study
raises -- how many patients, and (via
:func:`repro.stats.resampling.pvalues.required_resamples`) how many
replicates.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sps


def unit_information(allele_frequency: float, event_rate: float) -> float:
    """Per-patient Fisher information for an additive Cox SNP effect."""
    if not 0.0 < allele_frequency < 1.0:
        raise ValueError("allele_frequency must be in (0, 1)")
    if not 0.0 < event_rate <= 1.0:
        raise ValueError("event_rate must be in (0, 1]")
    genotype_variance = 2.0 * allele_frequency * (1.0 - allele_frequency)
    return event_rate * genotype_variance


def score_test_power(
    n_patients: int,
    effect_size: float,
    allele_frequency: float,
    event_rate: float = 0.85,
    alpha: float = 0.05,
) -> float:
    """Power of the two-sided marginal score test.

    ``effect_size`` is the per-allele log hazard ratio; ``alpha`` the
    two-sided significance level (use a Bonferroni-style per-test level
    for genome-wide settings, e.g. 5e-8).
    """
    if n_patients < 1:
        raise ValueError("n_patients must be >= 1")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    info = unit_information(allele_frequency, event_rate)
    ncp = abs(effect_size) * np.sqrt(n_patients * info)
    z = sps.norm.isf(alpha / 2.0)
    return float(sps.norm.sf(z - ncp) + sps.norm.cdf(-z - ncp))


def required_sample_size(
    effect_size: float,
    allele_frequency: float,
    event_rate: float = 0.85,
    alpha: float = 0.05,
    power: float = 0.8,
) -> int:
    """Patients needed for the score test to reach the target power."""
    if effect_size == 0.0:
        raise ValueError("effect_size must be nonzero")
    if not 0.0 < power < 1.0:
        raise ValueError("power must be in (0, 1)")
    info = unit_information(allele_frequency, event_rate)
    z_alpha = sps.norm.isf(alpha / 2.0)
    z_power = sps.norm.isf(1.0 - power)
    # solve Phi(ncp - z_alpha) = power  =>  ncp = z_alpha + z_power
    n = ((z_alpha + z_power) / abs(effect_size)) ** 2 / info
    return int(np.ceil(n))


def power_curve(
    sample_sizes: list[int],
    effect_size: float,
    allele_frequency: float,
    event_rate: float = 0.85,
    alpha: float = 0.05,
) -> dict[int, float]:
    """Power at each sample size (study-design table)."""
    return {
        n: score_test_power(n, effect_size, allele_frequency, event_rate, alpha)
        for n in sample_sizes
    }
