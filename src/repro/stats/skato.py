"""Burden and SKAT-O statistics with resampling inference.

The paper's related statistics: the weighted *burden* statistic collapses
a set's scores linearly before squaring (powerful when effects share a
direction), while SKAT squares first (powerful for mixed directions).
SKAT-O (Lee et al. 2012, the paper's ref. [17]) interpolates::

    Q_rho = (1 - rho) * Q_SKAT + rho * Q_burden,   rho in [0, 1]

and takes the best rho per set, calibrated by the minimum-p-value trick.
Everything here reuses the Monte Carlo replicate stream: for each
replicate the whole (set x rho) grid is two GEMMs, and the min-p null
distribution comes from ranking replicates against each other -- no
second resampling layer needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.resampling.streams import mc_multiplier_batches
from repro.stats.skat import membership_matrix, validate_set_ids

DEFAULT_RHO_GRID = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0)


def burden_statistics(
    scores: np.ndarray, weights: np.ndarray, set_ids: np.ndarray, n_sets: int
) -> np.ndarray:
    """``(sum_{j in I_k} w_j U_j)^2`` per set; batched like skat_statistics."""
    scores = np.asarray(scores, dtype=np.float64)
    single = scores.ndim == 1
    if single:
        scores = scores[None, :]
    weights = np.asarray(weights, dtype=np.float64)
    ids = validate_set_ids(set_ids, n_sets, scores.shape[1])
    linear = (scores * weights[None, :]) @ membership_matrix(ids, n_sets).T
    out = np.square(np.asarray(linear))
    return out[0] if single else out


def skato_grid_statistics(
    scores: np.ndarray,
    weights: np.ndarray,
    set_ids: np.ndarray,
    n_sets: int,
    rho_grid: tuple[float, ...] = DEFAULT_RHO_GRID,
) -> np.ndarray:
    """Q_rho for every (set, rho); returns (K, R) or (B, K, R)."""
    from repro.stats.skat import skat_statistics

    rho = np.asarray(rho_grid, dtype=np.float64)
    if rho.ndim != 1 or rho.size == 0 or np.any((rho < 0) | (rho > 1)):
        raise ValueError("rho grid must be values in [0, 1]")
    skat = np.asarray(skat_statistics(scores, weights, set_ids, n_sets))
    burden = np.asarray(burden_statistics(scores, weights, set_ids, n_sets))
    if skat.ndim == 1:  # single analysis: (K,) -> (K, R)
        return (1.0 - rho)[None, :] * skat[:, None] + rho[None, :] * burden[:, None]
    # batch: (B, K) -> (B, K, R)
    return (
        (1.0 - rho)[None, None, :] * skat[:, :, None]
        + rho[None, None, :] * burden[:, :, None]
    )


@dataclass(frozen=True)
class SkatOResult:
    """Per-set SKAT-O inference."""

    rho_grid: tuple[float, ...]
    observed_grid: np.ndarray  # (K, R) observed Q_rho
    per_rho_pvalues: np.ndarray  # (K, R) empirical p per rho
    pvalues: np.ndarray  # (K,) calibrated min-p SKAT-O p-values
    best_rho: np.ndarray  # (K,) argmin-p rho per set
    n_resamples: int


def skato_resampling(
    contributions: np.ndarray,
    weights: np.ndarray,
    set_ids: np.ndarray,
    n_sets: int,
    n_resamples: int,
    seed: int = 0,
    batch_size: int = 128,
    rho_grid: tuple[float, ...] = DEFAULT_RHO_GRID,
    monitor=None,
) -> SkatOResult:
    """Monte Carlo SKAT-O over the rho grid with min-p calibration.

    Keeps the full (B, K, R) replicate tensor so replicates can be ranked
    against each other; memory is ``B * K * R`` doubles (e.g. 1000 sets x
    6 rhos x 10000 replicates = 480 MB -- scale B or K accordingly, or
    fall back to per-rho inference via ``per_rho_pvalues``).

    ``monitor`` is an optional
    :class:`repro.obs.inference.ConvergenceMonitor` fed a per-set proxy
    count per batch: the number of replicates where *any* rho exceeds the
    observed Q_rho (a conservative stand-in for the min-p exceedance, so
    the CI never declares convergence before the calibrated p-value has).
    Per-set masking is disabled -- min-p calibration ranks replicates
    against each other and needs the full common tensor -- so an
    early-stop policy only truncates the whole replicate stream.
    """
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    U = np.asarray(contributions, dtype=np.float64)
    if U.ndim != 2:
        raise ValueError("contributions must be (J, n)")
    J, n = U.shape
    weights = np.asarray(weights, dtype=np.float64)
    ids = validate_set_ids(set_ids, n_sets, J)
    rho = tuple(float(r) for r in rho_grid)
    if monitor is not None and monitor.policy is not None:
        monitor.policy.mask_converged = False

    observed = skato_grid_statistics(U.sum(axis=1), weights, ids, n_sets, rho)  # (K, R)
    replicate_chunks = []
    for z_batch in mc_multiplier_batches(n, n_resamples, seed, batch_size):
        scores = z_batch @ U.T  # (b, J)
        batch_grid = skato_grid_statistics(scores, weights, ids, n_sets, rho)
        replicate_chunks.append(batch_grid)
        if monitor is not None:
            proxy = (batch_grid >= observed[None, :, :]).any(axis=2).sum(axis=0)
            monitor.fold(proxy.astype(np.int64), batch_grid.shape[0])
            if monitor.done:
                break
    if monitor is not None:
        monitor.finish()
    replicates = np.concatenate(replicate_chunks, axis=0)  # (B, K, R)
    B = replicates.shape[0]

    # per-rho empirical p for the observed statistics (add-one estimator)
    exceed = (replicates >= observed[None, :, :]).sum(axis=0)  # (K, R)
    per_rho_p = (exceed + 1.0) / (B + 1.0)

    # min-p across rho, calibrated against the replicates' own min-p:
    # rank each replicate among all replicates per (k, rho)
    order = np.argsort(-replicates, axis=0, kind="stable")
    ranks = np.empty_like(order)
    grid_b = np.arange(B)[:, None, None]
    np.put_along_axis(ranks, order, np.broadcast_to(grid_b, replicates.shape), axis=0)
    # rank r (0-based, descending) => #{b' != b : Q_b' >= Q_b} >= r; ties
    # resolved by stable order give a valid empirical p
    replicate_p = (ranks + 1.0) / (B + 1.0)  # (B, K, R)
    t_null = replicate_p.min(axis=2)  # (B, K)
    t_obs = per_rho_p.min(axis=1)  # (K,)
    pvalues = ((t_null <= t_obs[None, :]).sum(axis=0) + 1.0) / (B + 1.0)
    best_rho = np.array([rho[i] for i in per_rho_p.argmin(axis=1)])
    return SkatOResult(
        rho_grid=rho,
        observed_grid=observed,
        per_rho_pvalues=per_rho_p,
        pvalues=pvalues,
        best_rho=best_rho,
        n_resamples=B,
    )
