"""Process-wide metrics registry with Prometheus-style text exposition.

Three instrument kinds, deliberately tiny but semantically faithful:

- :class:`Counter` -- monotonically increasing totals;
- :class:`Gauge` -- a value that goes up and down;
- :class:`Histogram` -- cumulative fixed-bucket distribution with
  ``_bucket{le=...}`` / ``_sum`` / ``_count`` series.

All instruments support labels (``counter.labels(method="mc").inc()``).
:data:`REGISTRY` is the default process-wide registry; the driver paths in
:mod:`repro.core` record per-replicate resampling costs here so MC vs.
permutation economics are *measured*, and :class:`MetricsListener` bridges
the engine's listener bus into the same registry.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping, Sequence

from repro.engine.listener import (
    AdaptivePlanApplied,
    AlertFired,
    BlockCached,
    BlockEvicted,
    BlockFetchedRemote,
    EngineEvent,
    ExecutorHeartbeat,
    ExecutorLost,
    ExecutorTimedOut,
    InferenceBatchCompleted,
    JobEnd,
    Listener,
    ShuffleFetch,
    ShuffleWrite,
    SnpSetConverged,
    SpeculativeTaskLaunched,
    StageSkewDetected,
    StragglerDetected,
    TaskEnd,
)

DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    """Label-value escaping per the exposition formats: backslash, double
    quote, and line feed must be escaped or scrapers mis-parse the line."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _escape_help(text: str) -> str:
    """HELP text escaping: backslash and line feed."""
    return str(text).replace("\\", r"\\").replace("\n", r"\n")


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


class _Child:
    """One labeled series of a parent instrument."""

    def __init__(self, parent: "_Instrument", labels: tuple[tuple[str, str], ...]) -> None:
        self._parent = parent
        self._labels = labels
        self._lock = threading.Lock()
        self._value = 0.0
        # histogram state
        self._bucket_counts = [0] * len(parent.buckets) if parent.kind == "histogram" else None
        self._sum = 0.0
        self._count = 0

    # counters / gauges --------------------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        if self._parent.kind == "counter" and amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        if self._parent.kind != "gauge":
            raise TypeError("dec() is only valid on gauges")
        with self._lock:
            self._value -= amount

    def set(self, value: float) -> None:
        if self._parent.kind != "gauge":
            raise TypeError("set() is only valid on gauges")
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    # histograms ----------------------------------------------------------

    def observe(self, value: float) -> None:
        if self._parent.kind != "histogram":
            raise TypeError("observe() is only valid on histograms")
        with self._lock:
            self._sum += value
            self._count += 1
            # per-bucket (non-cumulative) storage; render()/quantile() cumulate
            for i, bound in enumerate(self._parent.buckets):
                if value <= bound:
                    self._bucket_counts[i] += 1
                    break

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket boundaries (upper bound)."""
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q * self._count
            running = 0
            for bound, n in zip(self._parent.buckets, self._bucket_counts):
                running += n
                if running >= target:
                    return bound
            return float("inf")

    # -- delta shipping ---------------------------------------------------

    def _raw_state(self):
        """Lock-consistent raw state used by registry delta snapshots."""
        with self._lock:
            if self._parent.kind == "histogram":
                return (self._sum, self._count, tuple(self._bucket_counts))
            return self._value

    def _apply_histogram_delta(self, sum_d: float, count_d: int, bucket_d: Sequence[int]) -> None:
        with self._lock:
            self._sum += sum_d
            self._count += count_d
            for i, n in enumerate(bucket_d):
                if n and i < len(self._bucket_counts):
                    self._bucket_counts[i] += n


class _Instrument:
    """A named metric family; holds one child per label combination."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._children: dict[tuple[tuple[str, str], ...], _Child] = {}

    def labels(self, **labels: str) -> _Child:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {sorted(labels)}"
            )
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _Child(self, key)
            return child

    def _default_child(self) -> _Child:
        if self.labelnames:
            raise ValueError(f"{self.name} has labels {self.labelnames}; use .labels()")
        return self.labels()

    def children(self) -> dict[tuple[tuple[str, str], ...], _Child]:
        with self._lock:
            return dict(self._children)

    # unlabeled conveniences ------------------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def value(self) -> float:
        return self._default_child().value

    @property
    def sum(self) -> float:
        return self._default_child().sum

    @property
    def count(self) -> int:
        return self._default_child().count


class Counter(_Instrument):
    kind = "counter"


class Gauge(_Instrument):
    kind = "gauge"


class Histogram(_Instrument):
    kind = "histogram"


class Registry:
    """A named collection of instruments with text exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _register(self, cls: type, name: str, help: str, **kwargs) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            instrument = cls(name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames=labelnames)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames=labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labelnames=labelnames, buckets=buckets)  # type: ignore[return-value]

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._instruments.get(name)

    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def render(self, openmetrics: bool = False, timestamp: float | None = None) -> str:
        """Text exposition of every instrument.

        Default: Prometheus text format 0.0.4.  ``openmetrics=True``
        emits the OpenMetrics flavor -- the same HELP/TYPE/sample lines
        (label values escaped, metric families in stable name order,
        children in stable label order) with an optional per-sample
        ``timestamp`` (seconds) and the mandatory ``# EOF`` trailer, so
        real scrapers accept the endpoint.
        """
        suffix = ""
        if openmetrics and timestamp is not None:
            suffix = f" {_format_value(round(timestamp, 3))}"
        lines: list[str] = []
        for inst in sorted(self.instruments(), key=lambda i: i.name):
            lines.append(f"# HELP {inst.name} {_escape_help(inst.help)}")
            lines.append(f"# TYPE {inst.name} {inst.kind}")
            for key, child in sorted(inst.children().items()):
                labels = dict(key)
                if inst.kind == "histogram":
                    cumulative = 0
                    for bound, n in zip(inst.buckets, child._bucket_counts):
                        cumulative += n
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = _format_value(bound)
                        lines.append(
                            f"{inst.name}_bucket{_format_labels(bucket_labels)} {cumulative}{suffix}"
                        )
                    inf_labels = dict(labels)
                    inf_labels["le"] = "+Inf"
                    lines.append(
                        f"{inst.name}_bucket{_format_labels(inf_labels)} {child.count}{suffix}"
                    )
                    lines.append(
                        f"{inst.name}_sum{_format_labels(labels)} {_format_value(child.sum)}{suffix}"
                    )
                    lines.append(
                        f"{inst.name}_count{_format_labels(labels)} {child.count}{suffix}"
                    )
                else:
                    lines.append(
                        f"{inst.name}{_format_labels(labels)} {_format_value(child.value)}{suffix}"
                    )
        if openmetrics:
            lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def snapshot(self, include_histograms: bool = False) -> dict[str, float]:
        """Flat {series_name: value} view of counters/gauges (testing aid).

        With ``include_histograms=True``, histogram series contribute
        ``<name>_count{...}`` and ``<name>_sum{...}`` entries.
        """
        out: dict[str, float] = {}
        for inst in self.instruments():
            for key, child in inst.children().items():
                labels = _format_labels(dict(key))
                if inst.kind == "histogram":
                    if include_histograms:
                        out[f"{inst.name}_count{labels}"] = child.count
                        out[f"{inst.name}_sum{labels}"] = child.sum
                else:
                    out[inst.name + labels] = child.value
        return out

    # -- worker delta shipping -------------------------------------------
    #
    # Worker processes carry their own process-wide REGISTRY; increments
    # made there (size estimation, per-task instrumentation, GC meters)
    # would otherwise be silently dropped.  A worker snapshots state before
    # a task, collects the delta after, and ships it with the task result;
    # the driver merges it so serial/threads/processes expose identical
    # series.

    def state_snapshot(self) -> dict:
        """Opaque baseline for a later :meth:`collect_delta`."""
        state: dict = {}
        for inst in self.instruments():
            for key, child in inst.children().items():
                state[(inst.name, key)] = child._raw_state()
        return state

    def collect_delta(self, baseline: dict) -> dict:
        """Shippable (picklable, plain-data) diff since ``baseline``.

        Counters/gauges ship the increment; histograms ship (sum, count,
        per-bucket) increments.  Series unchanged since the baseline are
        omitted.
        """
        delta: dict = {}
        for inst in self.instruments():
            series = []
            for key, child in inst.children().items():
                now = child._raw_state()
                base = baseline.get((inst.name, key))
                if inst.kind == "histogram":
                    b_sum, b_count, b_buckets = base or (0.0, 0, ())
                    if now[1] == b_count and now[0] == b_sum:
                        continue
                    buckets = [
                        n - (b_buckets[i] if i < len(b_buckets) else 0)
                        for i, n in enumerate(now[2])
                    ]
                    series.append({
                        "labels": dict(key),
                        "sum": now[0] - b_sum,
                        "count": now[1] - b_count,
                        "bucket_counts": buckets,
                    })
                else:
                    inc = now - (base or 0.0)
                    if inc == 0.0:
                        continue
                    series.append({"labels": dict(key), "inc": inc})
            if series:
                delta[inst.name] = {
                    "kind": inst.kind,
                    "help": inst.help,
                    "labelnames": list(inst.labelnames),
                    "buckets": list(inst.buckets) if inst.kind == "histogram" else None,
                    "series": series,
                }
        return delta

    def merge_delta(self, delta: dict) -> None:
        """Apply a worker-collected delta, creating instruments as needed."""
        for name, entry in delta.items():
            kind = entry["kind"]
            if kind == "histogram":
                inst = self.histogram(
                    name, entry["help"], labelnames=entry["labelnames"],
                    buckets=entry["buckets"] or DEFAULT_BUCKETS,
                )
            elif kind == "gauge":
                inst = self.gauge(name, entry["help"], labelnames=entry["labelnames"])
            else:
                inst = self.counter(name, entry["help"], labelnames=entry["labelnames"])
            for series in entry["series"]:
                child = inst.labels(**series["labels"])
                if kind == "histogram":
                    child._apply_histogram_delta(
                        series["sum"], series["count"], series["bucket_counts"]
                    )
                elif kind == "gauge":
                    child.inc(series["inc"])
                else:
                    # guard against clock/float noise producing negatives
                    child.inc(max(0.0, series["inc"]))


#: default process-wide registry
REGISTRY = Registry()


class MetricsListener(Listener):
    """Bridges the engine listener bus into a :class:`Registry`.

    Keeps engine-wide series live: job/task counts, task seconds, shuffle
    bytes and records, cache hits/misses/evictions, executor losses.
    """

    def __init__(self, registry: Registry | None = None) -> None:
        self.registry = registry or REGISTRY
        r = self.registry
        self.jobs_total = r.counter("engine_jobs_total", "jobs completed")
        self.tasks_total = r.counter(
            "engine_tasks_total", "task attempts finished", labelnames=("outcome",)
        )
        self.task_seconds = r.histogram("engine_task_seconds", "task attempt durations")
        self.shuffle_bytes = r.counter(
            "engine_shuffle_bytes_total", "shuffle bytes written"
        )
        self.shuffle_records = r.counter(
            "engine_shuffle_records_total", "shuffle records moved", labelnames=("direction",)
        )
        self.shuffle_compressed_bytes = r.counter(
            "engine_shuffle_compressed_bytes_total",
            "framed (post-compression) shuffle bytes stored",
        )
        self.serializer_seconds = r.counter(
            "engine_serializer_seconds_total",
            "wall seconds spent encoding/decoding data-plane frames",
        )
        self.blocks_cached = r.counter("engine_blocks_cached_total", "blocks inserted into caches")
        self.block_bytes_cached = r.counter(
            "engine_block_bytes_cached_total", "bytes inserted into caches"
        )
        self.blocks_evicted = r.counter("engine_blocks_evicted_total", "blocks LRU-evicted")
        self.blocks_spilled = r.counter(
            "engine_blocks_spilled_total", "evicted blocks preserved on disk"
        )
        self.remote_fetches = r.counter(
            "engine_block_remote_fetches_total", "cache blocks served from a remote executor"
        )
        self.cache_hits = r.counter("engine_cache_hits_total", "task-side cache hits")
        self.cache_misses = r.counter("engine_cache_misses_total", "task-side cache misses")
        self.executors_lost = r.counter("engine_executors_lost_total", "executors lost")
        self.driver_bytes_collected = r.counter(
            "engine_driver_bytes_collected_total",
            "estimated bytes of task results materialized on the driver",
        )
        self.task_binary_bytes = r.counter(
            "engine_task_binary_bytes_total",
            "serialized stage task-binary bytes shipped to workers",
        )
        # -- executor telemetry plane ------------------------------------
        self.heartbeats = r.counter(
            "engine_executor_heartbeats_total", "executor heartbeats received",
            labelnames=("executor",),
        )
        self.executor_rss = r.gauge(
            "engine_executor_rss_bytes", "last heartbeat-reported RSS per executor",
            labelnames=("executor",),
        )
        self.executors_timed_out = r.counter(
            "engine_executors_timed_out_total",
            "busy executors declared lost after missing heartbeats",
        )
        self.gc_pause_seconds = r.counter(
            "engine_task_gc_pause_seconds_total",
            "GC pause time observed during task attempts",
        )
        self.deserialize_seconds = r.counter(
            "engine_task_deserialize_seconds_total",
            "worker-side task payload deserialization time",
        )
        self.result_serialize_seconds = r.counter(
            "engine_task_result_serialize_seconds_total",
            "worker-side task result serialization time",
        )
        self.peak_rss = r.gauge(
            "engine_task_peak_rss_bytes", "largest per-task peak RSS observed"
        )
        self.tasks_profiled = r.counter(
            "engine_tasks_profiled_total", "task attempts run under the sampled profiler"
        )
        # -- continuous monitoring plane ----------------------------------
        # skew/straggler findings surface here as counters so the alert
        # engine's rate rules can watch them through the TSDB
        self.stage_skew = r.counter(
            "engine_stage_skew_total", "stages flagged with partition skew"
        )
        self.stragglers = r.counter(
            "engine_stragglers_total", "task attempts flagged as stragglers"
        )
        self.alerts_fired = r.counter(
            "engine_alerts_fired_total", "alert rules that crossed into firing",
            labelnames=("severity",),
        )
        # -- adaptive query execution --------------------------------------
        self.adaptive_plans = r.counter(
            "engine_adaptive_plans_total",
            "adaptive plan rewrites applied at stage boundaries",
            labelnames=("kind",),
        )
        self.speculative_launched = r.counter(
            "engine_speculative_tasks_launched_total",
            "speculative twin attempts launched against stragglers",
        )
        self.speculative_won = r.counter(
            "engine_speculative_tasks_won_total",
            "speculative twin attempts that committed first",
        )
        # -- inference convergence -----------------------------------------
        self.inference_replicates = r.counter(
            "engine_inference_replicates_total",
            "resampling replicates folded into convergence monitors",
            labelnames=("method",),
        )
        self.inference_sets_converged = r.counter(
            "engine_inference_sets_converged_total",
            "SNP-sets whose p-value confidence interval became decisive",
            labelnames=("status",),
        )
        self.inference_replicates_saved = r.counter(
            "engine_inference_replicates_saved_total",
            "planned replicates skipped by sequential early stopping",
        )

    def on_event(self, event: EngineEvent) -> None:
        if isinstance(event, JobEnd):
            self.jobs_total.inc()
        elif isinstance(event, TaskEnd):
            rec = event.record
            self.tasks_total.labels(outcome="success" if rec.succeeded else "failure").inc()
            if rec.succeeded:
                self.task_seconds.observe(rec.duration_seconds)
                self.cache_hits.inc(rec.metrics.cache_hits)
                self.cache_misses.inc(rec.metrics.cache_misses)
                self.driver_bytes_collected.inc(rec.metrics.driver_bytes_collected)
                self.task_binary_bytes.inc(rec.metrics.task_binary_bytes)
                self.serializer_seconds.inc(rec.metrics.serializer_seconds)
                self.gc_pause_seconds.inc(rec.metrics.gc_pause_seconds)
                self.deserialize_seconds.inc(rec.metrics.deserialize_seconds)
                self.result_serialize_seconds.inc(rec.metrics.result_serialize_seconds)
                if rec.metrics.peak_rss_bytes > self.peak_rss.value:
                    self.peak_rss.set(rec.metrics.peak_rss_bytes)
                if rec.profile is not None:
                    self.tasks_profiled.inc()
                if rec.speculative:
                    self.speculative_won.inc()
        elif isinstance(event, ExecutorHeartbeat):
            self.heartbeats.labels(executor=event.executor_id).inc()
            if event.rss_bytes:
                self.executor_rss.labels(executor=event.executor_id).set(event.rss_bytes)
        elif isinstance(event, ExecutorTimedOut):
            self.executors_timed_out.inc()
        elif isinstance(event, ShuffleWrite):
            self.shuffle_bytes.inc(event.bytes_written)
            self.shuffle_compressed_bytes.inc(event.compressed_bytes)
            self.shuffle_records.labels(direction="write").inc(event.records_written)
        elif isinstance(event, ShuffleFetch):
            self.shuffle_records.labels(direction="read").inc(event.records_read)
        elif isinstance(event, BlockCached):
            self.blocks_cached.inc()
            self.block_bytes_cached.inc(event.size)
        elif isinstance(event, BlockEvicted):
            self.blocks_evicted.inc()
            if event.spilled:
                self.blocks_spilled.inc()
        elif isinstance(event, BlockFetchedRemote):
            self.remote_fetches.inc()
        elif isinstance(event, ExecutorLost):
            self.executors_lost.inc()
        elif isinstance(event, StageSkewDetected):
            self.stage_skew.inc()
        elif isinstance(event, StragglerDetected):
            self.stragglers.inc()
        elif isinstance(event, AdaptivePlanApplied):
            self.adaptive_plans.labels(kind=event.kind).inc()
        elif isinstance(event, SpeculativeTaskLaunched):
            self.speculative_launched.inc()
        elif isinstance(event, InferenceBatchCompleted):
            if event.batch_width:
                self.inference_replicates.labels(method=event.method).inc(
                    event.batch_width
                )
            if event.replicates_saved:
                self.inference_replicates_saved.inc(event.replicates_saved)
        elif isinstance(event, SnpSetConverged):
            self.inference_sets_converged.labels(status=event.status).inc()
        elif isinstance(event, AlertFired):
            self.alerts_fired.labels(severity=event.severity).inc()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "REGISTRY",
    "MetricsListener",
    "DEFAULT_BUCKETS",
]
