"""Embedded live UI: a Spark-UI-style HTTP server on the driver.

Pure stdlib (:class:`http.server.ThreadingHTTPServer` on a daemon thread),
started by ``Context(ui_port=...)`` or ``sparkscore analyze --ui-port``.
Endpoints:

- ``/metrics`` -- OpenMetrics exposition of the process-wide registry
  (HELP/TYPE lines, escaped label values, per-sample timestamps, ``# EOF``
  trailer; worker-side increments included: the process backend ships
  registry deltas home with every task result);
- ``/api/jobs`` -- completed jobs, Spark-REST-style JSON;
- ``/api/stages`` -- per-stage summaries with aggregated task metrics;
- ``/api/executors`` -- the executor fleet with heartbeat liveness;
- ``/api/progress`` -- live jobs/stages/executors snapshot (what the
  console progress bar renders), advancing while a job is mid-flight;
- ``/api/logs`` -- the tail of the structured log ring buffer
  (``?level=`` filters, ``?limit=`` bounds the tail length);
- ``/api/diagnostics`` -- skew/straggler/cache-pressure findings from the
  online :class:`~repro.obs.diagnostics.DiagnosticsListener`;
- ``/api/timeseries`` -- sampled metric history from the in-memory TSDB
  (``?name=`` selects one metric family, ``?window=`` trims to trailing
  seconds); empty unless the context runs a metrics sampler;
- ``/api/alerts`` -- alert rules, live per-series states, and the
  transition history; empty unless alerting is enabled;
- ``/api/fleet`` -- the cluster-resident fleet snapshot (uptime, jobs
  served, per-driver throughput, per-executor series that survive
  driver teardown); disabled unless the backend exposes
  ``fleet_snapshot`` (cluster backend only);
- ``/api/adaptive`` -- the adaptive planner's decision ledger (plan
  rewrites, serializer picks, speculation wins) and enablement flags;
- ``/api/inference`` -- convergence telemetry for resampling runs:
  per-set running p-values with CI bounds, decision status, replicate
  throughput, and early-stop savings (always present; ``enabled``
  reflects the ``inference_early_stop`` knob);
- ``/`` -- a minimal auto-refreshing HTML dashboard over the above, with
  sparkline panels for sampled series and a banner for firing alerts.

Bind ``port=0`` to let the OS pick a free port (tests do this); the bound
port is available as ``UIServer.port`` and the full base URL as
``UIServer.url``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from repro.obs.registry import REGISTRY

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.context import Context


def _job_summary(job) -> dict:
    totals = job.totals()
    return {
        "job_id": job.job_id,
        "description": job.description,
        "status": "SUCCEEDED",
        "wall_seconds": job.wall_seconds,
        "num_stages": len(job.stages),
        "num_tasks": sum(s.num_tasks for s in job.stages),
        "num_task_failures": job.num_task_failures,
        "num_stage_resubmissions": job.num_stage_resubmissions,
        "total_task_seconds": job.total_task_seconds,
        "shuffle_bytes_written": totals.shuffle_bytes_written,
        "shuffle_bytes_read": totals.shuffle_bytes_read,
        "peak_rss_bytes": totals.peak_rss_bytes,
    }


def _stage_summary(job, stage) -> dict:
    totals = stage.totals()
    return {
        "job_id": job.job_id,
        "stage_id": stage.stage_id,
        "attempt": stage.attempt,
        "name": stage.name,
        "status": "COMPLETE",
        "num_tasks": stage.num_tasks,
        "wall_seconds": stage.wall_seconds,
        "total_task_seconds": stage.total_task_seconds,
        "records_read": totals.records_read,
        "shuffle_bytes_written": totals.shuffle_bytes_written,
        "shuffle_bytes_read": totals.shuffle_bytes_read,
        "gc_pause_seconds": totals.gc_pause_seconds,
        "deserialize_seconds": totals.deserialize_seconds,
        "result_serialize_seconds": totals.result_serialize_seconds,
        "peak_rss_bytes": totals.peak_rss_bytes,
        "task_binary_bytes": totals.task_binary_bytes,
    }


_DASHBOARD = """<!doctype html>
<html><head><title>sparkscore UI</title>
<style>
 body { font-family: monospace; margin: 2em; background: #fafafa; }
 h1 { font-size: 1.2em; } h2 { font-size: 1em; margin-top: 1.5em; }
 table { border-collapse: collapse; }
 td, th { border: 1px solid #ccc; padding: 2px 8px; text-align: left; }
 .bar { background: #3b7; height: 10px; display: inline-block; }
 .trough { background: #ddd; width: 200px; display: inline-block; }
 .spark { font-size: 1.1em; letter-spacing: 1px; color: #37b; }
 #alertbanner { display: none; background: #c33; color: #fff;
   padding: 6px 12px; margin: 8px 0; font-weight: bold; }
 #alertbanner.warning { background: #c93; }
</style></head>
<body>
<h1>sparkscore engine UI</h1>
<p>endpoints: <a href="/metrics">/metrics</a>
 <a href="/api/jobs">/api/jobs</a>
 <a href="/api/stages">/api/stages</a>
 <a href="/api/executors">/api/executors</a>
 <a href="/api/progress">/api/progress</a>
 <a href="/api/logs">/api/logs</a>
 <a href="/api/diagnostics">/api/diagnostics</a>
 <a href="/api/timeseries">/api/timeseries</a>
 <a href="/api/alerts">/api/alerts</a>
 <a href="/api/fleet">/api/fleet</a>
 <a href="/api/adaptive">/api/adaptive</a>
 <a href="/api/inference">/api/inference</a></p>
<div id="alertbanner"></div>
<h2>stages</h2><div id="stages">loading...</div>
<h2>executors</h2><div id="executors"></div>
<h2>completed jobs</h2><div id="jobs"></div>
<h2>diagnostics</h2><div id="diagnostics"></div>
<h2>adaptive execution</h2><div id="adaptive">off</div>
<h2>inference convergence</h2><div id="inference">no resampling runs yet</div>
<h2>metric sparklines</h2><div id="sparklines">sampler off</div>
<h2>fleet</h2><div id="fleet">no persistent fleet</div>
<h2>recent logs</h2><div id="logs"></div>
<script>
function row(cells, tag) {
  tag = tag || "td";
  return "<tr>" + cells.map(c => "<" + tag + ">" + c + "</" + tag + ">").join("") + "</tr>";
}
const TICKS = "▁▂▃▄▅▆▇█";
function sparkline(values) {
  if (!values.length) return "";
  const lo = Math.min(...values), hi = Math.max(...values);
  const span = hi - lo || 1;
  return values.slice(-40).map(v =>
    TICKS[Math.min(7, Math.floor(8 * (v - lo) / span))]).join("");
}
async function refresh() {
  const prog = await (await fetch("/api/progress")).json();
  document.getElementById("stages").innerHTML = "<table>" +
    row(["stage", "name", "state", "progress", "tasks"], "th") +
    prog.stages.map(s => {
      const pct = Math.round(100 * s.completed_tasks / Math.max(1, s.num_tasks));
      const bar = '<span class="trough"><span class="bar" style="width:' + 2 * pct + 'px"></span></span> ' + pct + '%';
      return row([s.stage_id, s.name, s.state, bar, s.completed_tasks + "/" + s.num_tasks]);
    }).join("") + "</table>";
  document.getElementById("executors").innerHTML = "<table>" +
    row(["executor", "state", "heartbeats", "inflight", "rss"], "th") +
    prog.executors.map(e => row([e.executor_id, e.state || "alive", e.heartbeats,
      e.inflight || 0, ((e.rss_bytes || 0) / 1048576).toFixed(1) + " MB"])).join("") + "</table>";
  const jobs = await (await fetch("/api/jobs")).json();
  document.getElementById("jobs").innerHTML = "<table>" +
    row(["job", "description", "wall s", "stages", "tasks", "failures"], "th") +
    jobs.map(j => row([j.job_id, j.description, j.wall_seconds.toFixed(3),
      j.num_stages, j.num_tasks, j.num_task_failures])).join("") + "</table>";
  const diag = await (await fetch("/api/diagnostics")).json();
  const findings = diag.skew.map(s =>
      ["skew", "stage " + s.stage_id, s.metric + " max/median " + s.max_over_median.toFixed(1) + "x"])
    .concat(diag.stragglers.map(s =>
      ["straggler", "stage " + s.stage_id + " p" + s.partition,
       s.duration_seconds.toFixed(2) + "s vs median " + s.median_seconds.toFixed(2) + "s"]));
  document.getElementById("diagnostics").innerHTML = findings.length
    ? "<table>" + row(["kind", "where", "detail"], "th") +
      findings.map(f => row(f)).join("") + "</table>"
    : "no skew or stragglers detected";
  const aqe = await (await fetch("/api/adaptive")).json();
  if (aqe.enabled || aqe.speculation_enabled || (aqe.decisions || []).length) {
    const summary = "plans " + aqe.stages_rewritten +
      ", serializer picks " + aqe.serializer_picks +
      ", speculative launched/won " + aqe.speculative_launched + "/" + aqe.speculative_won;
    const decisions = (aqe.decisions || []).slice(-15).reverse();
    document.getElementById("adaptive").innerHTML = summary +
      (decisions.length
        ? "<table>" + row(["kind", "shuffle", "stage", "job", "partitions", "detail"], "th") +
          decisions.map(d => row([d.kind, d.shuffle_id ?? "", d.stage_id ?? "",
            d.job_id ?? "", (d.old_partitions ?? "") + " → " + (d.new_partitions ?? ""),
            d.detail ?? ""])).join("") + "</table>"
        : "");
  }
  const inf = await (await fetch("/api/inference")).json();
  if ((inf.runs || []).length) {
    document.getElementById("inference").innerHTML = inf.runs.map(r => {
      const pct = Math.round(100 * r.sets_converged / Math.max(1, r.sets_total));
      const bar = '<span class="trough"><span class="bar" style="width:' + 2 * pct + 'px"></span></span>';
      const head = r.method + ": " + r.replicates_total +
        (r.planned_replicates ? "/" + r.planned_replicates : "") + " replicates @ " +
        r.replicates_per_sec.toFixed(0) + "/s, converged " +
        r.sets_converged + "/" + r.sets_total + " " + bar +
        (r.replicates_saved ? ", saved " + r.replicates_saved : "") +
        (r.early_stop ? " [early-stop]" : " [monitor only]");
      const sets = r.sets.slice(0, 20).map(s => row([s.name, s.status,
        s.pvalue.toFixed(4), s.ci_low.toFixed(4) + " – " + s.ci_high.toFixed(4),
        s.replicates,
        '<span class="spark">' + sparkline(s.trajectory.map(p => p[1])) + "</span>"]));
      return head + "<table>" +
        row(["set", "status", "p̂", "CI (99.9%)", "replicates", "trajectory"], "th") +
        sets.join("") + "</table>";
    }).join("<hr>");
  }
  const logs = await (await fetch("/api/logs?limit=25")).json();
  document.getElementById("logs").innerHTML = "<table>" +
    row(["level", "logger", "job", "stage", "part", "message"], "th") +
    logs.map(l => row([l.level, l.logger, l.job_id ?? "", l.stage_id ?? "",
      l.partition ?? "", l.message])).join("") + "</table>";
  const alerts = await (await fetch("/api/alerts")).json();
  const banner = document.getElementById("alertbanner");
  if (alerts.enabled) {
    const firing = alerts.states.filter(s => s.state === "firing");
    if (firing.length) {
      banner.style.display = "block";
      banner.className = firing.some(s => s.severity === "critical") ? "" : "warning";
      banner.textContent = "ALERTS FIRING: " + firing.map(s =>
        s.rule + " (" + s.severity + ", " + JSON.stringify(s.labels) + ")").join("; ");
    } else {
      banner.style.display = "none";
    }
  }
  const fleet = await (await fetch("/api/fleet?window=120")).json();
  if (fleet.enabled) {
    const occ = {}, depth = {};
    (fleet.series || []).forEach(s => {
      const eid = (s.labels || {}).executor_id;
      if (!eid) return;
      if (s.name === "fleet_slot_occupancy") occ[eid] = s.samples.map(p => p[1]);
      if (s.name === "fleet_queue_depth") depth[eid] = s.samples.map(p => p[1]);
    });
    const eids = (fleet.executors || []).map(e => e.executor_id);
    const warm = fleet.warm || {};
    document.getElementById("fleet").innerHTML =
      "uptime " + (fleet.uptime_seconds || 0).toFixed(0) + "s, " +
      "jobs served " + (fleet.jobs_served || 0) + ", " +
      "warm bytes saved " + ((warm.warm_bytes_saved || 0) / 1048576).toFixed(1) + " MB" +
      "<table>" + row(["executor", "occupancy", "queue depth"], "th") +
      eids.map(eid => row([eid,
        '<span class="spark">' + sparkline(occ[eid] || []) + "</span>",
        '<span class="spark">' + sparkline(depth[eid] || []) + "</span>",
      ])).join("") + "</table>";
  }
  const ts = await (await fetch("/api/timeseries?window=60")).json();
  if (ts.enabled) {
    const interesting = ts.series.filter(s => s.samples.length > 1).slice(0, 12);
    document.getElementById("sparklines").innerHTML = interesting.length
      ? "<table>" + row(["series", "last", "trend"], "th") +
        interesting.map(s => {
          const vals = s.samples.map(p => p[1]);
          const label = Object.keys(s.labels).length ? JSON.stringify(s.labels) : "";
          return row([s.name + " " + label, vals[vals.length - 1],
            '<span class="spark">' + sparkline(vals) + "</span>"]);
        }).join("") + "</table>"
      : "no moving series yet";
  }
}
refresh(); setInterval(refresh, 1000);
</script></body></html>
"""


class UIServer:
    """The embedded HTTP server; one daemon thread, stdlib only."""

    def __init__(self, ctx: "Context", port: int = 0, host: str = "127.0.0.1") -> None:
        self.ctx = ctx
        self.host = host
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt: str, *args) -> None:  # quiet
                pass

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                try:
                    outer._route(self)
                except BrokenPipeError:  # client went away mid-response
                    pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-ui", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- routing -----------------------------------------------------------

    def _route(self, handler: BaseHTTPRequestHandler) -> None:
        path = handler.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/metrics":
            body = REGISTRY.render(openmetrics=True, timestamp=time.time())
            # a persistent fleet contributes its own (executor_id/driver
            # labeled) families, minus any name the registry already owns
            snapshot_fn = getattr(self.ctx.backend, "fleet_snapshot", None)
            if snapshot_fn is not None:
                from repro.obs.fleet import render_fleet_families

                try:
                    extra = render_fleet_families(
                        snapshot_fn(None),
                        skip={i.name for i in REGISTRY.instruments()},
                    )
                except Exception:
                    extra = []
                if extra:
                    body = (
                        body[: body.rindex("# EOF")]
                        + "\n".join(extra)
                        + "\n# EOF\n"
                    )
            self._send(
                handler,
                body,
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
            )
        elif path == "/api/jobs":
            jobs = self.ctx.metrics.jobs_snapshot()
            self._send_json(handler, [_job_summary(j) for j in jobs])
        elif path == "/api/stages":
            jobs = self.ctx.metrics.jobs_snapshot()
            self._send_json(
                handler,
                [_stage_summary(j, s) for j in jobs for s in j.stages],
            )
        elif path == "/api/executors":
            live = {
                e["executor_id"]: e
                for e in self.ctx.progress.snapshot()["executors"]
            }
            # persistent backends contribute lifecycle state + warmth;
            # the registry contributes per-executor warm-cache hit counts
            cluster = {}
            info_fn = getattr(self.ctx.backend, "executor_info", None)
            if info_fn is not None:
                try:
                    cluster = {c["executor_id"]: c for c in info_fn()}
                except Exception:
                    cluster = {}
            def _labeled(counter_name: str) -> dict:
                counter = REGISTRY.get(counter_name)
                if counter is None:
                    return {}
                return {
                    dict(key).get("executor", ""): child.value
                    for key, child in counter.children().items()
                }

            binary_hits = _labeled("task_binary_cache_hits_total")
            memo_hits = _labeled("broadcast_memo_hits_total")
            out = []
            for executor in self.ctx.executors:
                eid = executor.executor_id
                info = {
                    "executor_id": eid,
                    "host": executor.host,
                    "cores": executor.cores,
                    "alive": executor.alive,
                    "tasks_run": executor.tasks_run,
                    "tasks_failed": executor.tasks_failed,
                    "cached_blocks": len(executor.block_manager.block_ids()),
                    "task_binary_cache_hits": binary_hits.get(eid, 0),
                    "broadcast_memo_hits": memo_hits.get(eid, 0),
                }
                extra = cluster.get(eid)
                if extra is not None:
                    info.update({
                        "cluster_state": extra.get("state"),
                        "warm": extra.get("warm"),
                        "slots": extra.get("slots"),
                        "worker_pid": extra.get("pid"),
                        "binaries_cached": extra.get("binaries_cached"),
                        "cluster_tasks_done": extra.get("tasks_done"),
                    })
                info.update(live.get(eid, {}))
                out.append(info)
            self._send_json(handler, out)
        elif path == "/api/progress":
            self._send_json(handler, self.ctx.progress.snapshot())
        elif path == "/api/logs":
            from repro.obs.logging import LOG_BUS

            query = handler.path.partition("?")[2]
            params = dict(
                part.split("=", 1) for part in query.split("&") if "=" in part
            )
            try:
                limit = int(params.get("limit", 200))
            except ValueError:
                limit = 200
            records = LOG_BUS.records(level=params.get("level"), limit=limit)
            self._send_json(handler, [r.to_dict() for r in records])
        elif path == "/api/diagnostics":
            self._send_json(handler, self.ctx.diagnostics.snapshot())
        elif path == "/api/timeseries":
            store = getattr(self.ctx, "timeseries", None)
            if store is None:
                self._send_json(handler, {"enabled": False, "series": []})
                return
            query = handler.path.partition("?")[2]
            params = dict(
                part.split("=", 1) for part in query.split("&") if "=" in part
            )
            window = None
            try:
                if "window" in params:
                    window = float(params["window"])
            except ValueError:
                window = None
            if "name" in params:
                series = store.query(params["name"])
            else:
                series = store.dump(window)
            self._send_json(
                handler,
                {"enabled": True, "names": store.names(), "series": series},
            )
        elif path == "/api/fleet":
            snapshot_fn = getattr(self.ctx.backend, "fleet_snapshot", None)
            if snapshot_fn is None:
                self._send_json(handler, {"enabled": False})
                return
            query = handler.path.partition("?")[2]
            params = dict(
                part.split("=", 1) for part in query.split("&") if "=" in part
            )
            window = None
            try:
                if "window" in params:
                    window = float(params["window"])
            except ValueError:
                window = None
            try:
                snapshot = snapshot_fn(window)
            except Exception:
                self._send_json(handler, {"enabled": False})
                return
            out = {"enabled": True}
            out.update(snapshot)
            self._send_json(handler, out)
        elif path == "/api/adaptive":
            planner = getattr(self.ctx, "adaptive", None)
            if planner is None:
                self._send_json(handler, {"enabled": False, "decisions": []})
                return
            self._send_json(handler, planner.snapshot())
        elif path == "/api/inference":
            holder = getattr(self.ctx, "inference", None)
            if holder is None:
                self._send_json(handler, {"enabled": False, "runs": []})
                return
            self._send_json(handler, holder.snapshot())
        elif path == "/api/alerts":
            manager = getattr(self.ctx, "alerts", None)
            if manager is None:
                self._send_json(
                    handler,
                    {"enabled": False, "rules": [], "states": [], "history": []},
                )
                return
            out = {"enabled": True}
            out.update(manager.snapshot())
            self._send_json(handler, out)
        elif path == "/":
            self._send(handler, _DASHBOARD, "text/html; charset=utf-8")
        else:
            handler.send_error(404, "unknown endpoint")

    @staticmethod
    def _send(handler: BaseHTTPRequestHandler, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        handler.send_response(200)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(data)))
        handler.end_headers()
        handler.wfile.write(data)

    @classmethod
    def _send_json(cls, handler: BaseHTTPRequestHandler, obj) -> None:
        cls._send(handler, json.dumps(obj, indent=1), "application/json")


__all__ = ["UIServer"]
