"""History-server analysis over persisted job metrics.

Consumes :class:`~repro.engine.metrics.JobMetrics` (usually loaded from an
event log via :func:`repro.engine.eventlog.read_event_log`) and produces
the analyses the benchmarks and ``sparkscore history`` report:

- per-job **stage tables** (tasks, wall time, task-time sum, shuffle and
  cache traffic);
- **straggler percentiles** (p50 / p95 / max task duration per stage);
- **cache hit rates**;
- DAG **critical-path analysis**: the longest dependency chain through the
  stage graph, where each stage contributes its slowest task (tasks within
  a stage run in parallel; stages on a dependency chain cannot overlap).
  ``total task time / critical path time`` bounds the theoretical speedup
  any scheduler could still extract from more parallelism;
- **resource telemetry** rollups (GC pause, peak RSS, serialization split)
  and an aggregated **profiler hotspot table** when any task in the log was
  run under the sampled profiler (v3 logs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.engine.metrics import JobMetrics, StageMetrics
from repro.engine.profiler import aggregate_hotspots


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q / 100.0 * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


@dataclass
class StageSummary:
    """One row of the per-job stage table."""

    stage_id: int
    name: str
    attempt: int
    num_tasks: int
    wall_seconds: float
    task_seconds: float
    p50: float
    p95: float
    max: float
    shuffle_read_records: int
    shuffle_written_bytes: int
    cache_hits: int
    cache_misses: int
    failures: int


def summarize_stage(stage: StageMetrics) -> StageSummary:
    durations = [t.duration_seconds for t in stage.tasks if t.succeeded]
    totals = stage.totals()
    return StageSummary(
        stage_id=stage.stage_id,
        name=stage.name,
        attempt=stage.attempt,
        num_tasks=stage.num_tasks,
        wall_seconds=stage.wall_seconds,
        task_seconds=sum(durations),
        p50=percentile(durations, 50),
        p95=percentile(durations, 95),
        max=max(durations, default=0.0),
        shuffle_read_records=totals.shuffle_records_read,
        shuffle_written_bytes=totals.shuffle_bytes_written,
        cache_hits=totals.cache_hits,
        cache_misses=totals.cache_misses,
        failures=sum(1 for t in stage.tasks if not t.succeeded),
    )


@dataclass
class CriticalPathResult:
    """Longest dependency chain through one job's stage DAG."""

    path: list[int] = field(default_factory=list)  # stage ids, root -> sink
    critical_seconds: float = 0.0
    total_task_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def max_speedup(self) -> float:
        """Upper bound on speedup from infinite parallelism (Amdahl-style)."""
        if self.critical_seconds <= 0.0:
            return 1.0
        return self.total_task_seconds / self.critical_seconds

    @property
    def parallel_efficiency(self) -> float:
        """How much of the wall clock the critical path explains (<=1 good)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.critical_seconds / self.wall_seconds


def _stage_cost(entries: list[StageMetrics]) -> float:
    """Critical contribution of one stage id: slowest task per attempt,
    summed over resubmission attempts (attempts run sequentially)."""
    cost = 0.0
    for stage in entries:
        durations = [t.duration_seconds for t in stage.tasks if t.succeeded]
        if durations:
            cost += max(durations)
        else:
            cost += stage.wall_seconds
    return cost


def critical_path(job: JobMetrics) -> CriticalPathResult:
    """Longest chain through the stage dependency DAG of one job.

    Each stage contributes the duration of its slowest task (its tasks run
    in parallel, so the slowest gates the stage); a stage cannot start
    before every parent stage finished, so chain costs add along
    dependency edges.
    """
    by_id: dict[int, list[StageMetrics]] = {}
    for stage in job.stages:
        by_id.setdefault(stage.stage_id, []).append(stage)
    parents: dict[int, tuple[int, ...]] = {
        sid: entries[-1].parent_stage_ids for sid, entries in by_id.items()
    }
    costs = {sid: _stage_cost(entries) for sid, entries in by_id.items()}

    memo: dict[int, tuple[float, list[int]]] = {}

    def chain(sid: int, visiting: frozenset[int]) -> tuple[float, list[int]]:
        if sid in memo:
            return memo[sid]
        if sid in visiting:  # defensive: corrupt logs must not hang us
            return costs.get(sid, 0.0), [sid]
        best_cost, best_path = 0.0, []
        for parent in parents.get(sid, ()):
            if parent not in by_id:
                continue
            c, p = chain(parent, visiting | {sid})
            if c > best_cost:
                best_cost, best_path = c, p
        result = (best_cost + costs.get(sid, 0.0), best_path + [sid])
        memo[sid] = result
        return result

    best = CriticalPathResult(wall_seconds=job.wall_seconds)
    best.total_task_seconds = sum(
        t.duration_seconds for s in job.stages for t in s.tasks if t.succeeded
    )
    for sid in by_id:
        cost, path = chain(sid, frozenset())
        if cost > best.critical_seconds:
            best.critical_seconds = cost
            best.path = path
    return best


# -- rendering ----------------------------------------------------------------


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:,.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:,.1f} GiB"  # pragma: no cover


def _fmt_secs(s: float) -> str:
    if s >= 100:
        return f"{s:,.0f}s"
    if s >= 1:
        return f"{s:.2f}s"
    return f"{s * 1000:.1f}ms"


def render_stage_table(job: JobMetrics) -> str:
    """Fixed-width per-stage table for one job."""
    header = (
        f"{'stage':>6} {'attempt':>7} {'tasks':>5} {'wall':>9} {'task-sum':>9} "
        f"{'p50':>8} {'p95':>8} {'max':>8} {'shuf-out':>11} {'hits':>6} "
        f"{'miss':>6} {'fail':>4}  name"
    )
    lines = [header, "-" * len(header)]
    for stage in job.stages:
        s = summarize_stage(stage)
        lines.append(
            f"{s.stage_id:>6} {s.attempt:>7} {s.num_tasks:>5} "
            f"{_fmt_secs(s.wall_seconds):>9} {_fmt_secs(s.task_seconds):>9} "
            f"{_fmt_secs(s.p50):>8} {_fmt_secs(s.p95):>8} {_fmt_secs(s.max):>8} "
            f"{_fmt_bytes(s.shuffle_written_bytes):>11} {s.cache_hits:>6} "
            f"{s.cache_misses:>6} {s.failures:>4}  {s.name}"
        )
    return "\n".join(lines)


def render_job_summary(job: JobMetrics) -> str:
    """Multi-line textual report for one job: header, stage table, cache
    hit rate, stragglers, and the critical-path verdict."""
    totals = job.totals()
    cp = critical_path(job)
    accesses = totals.cache_hits + totals.cache_misses
    hit_rate = totals.cache_hits / accesses if accesses else 0.0
    n_tasks = sum(len(s.tasks) for s in job.stages)
    lines = [
        f"== job {job.job_id}: {job.description!r} ==",
        f"   wall {_fmt_secs(job.wall_seconds)}  stages {len(job.stages)}  "
        f"task attempts {n_tasks}  failures {job.num_task_failures}  "
        f"stage resubmissions {job.num_stage_resubmissions}",
        "",
        render_stage_table(job),
        "",
        f"   cache: {totals.cache_hits} hits / {totals.cache_misses} misses "
        f"({hit_rate:.1%} hit rate, {totals.remote_cache_hits} remote)",
        f"   shuffle: {_fmt_bytes(totals.shuffle_bytes_written)} written, "
        f"{totals.shuffle_records_read} records read",
        f"   critical path: stages {' -> '.join(map(str, cp.path)) or '-'} | "
        f"{_fmt_secs(cp.critical_seconds)} critical vs "
        f"{_fmt_secs(cp.total_task_seconds)} total task time "
        f"=> max speedup {cp.max_speedup:.2f}x",
    ]
    if totals.gc_pause_seconds or totals.peak_rss_bytes:
        lines.append(
            f"   telemetry: gc pause {_fmt_secs(totals.gc_pause_seconds)}, "
            f"peak rss {_fmt_bytes(totals.peak_rss_bytes)}, "
            f"deserialize {_fmt_secs(totals.deserialize_seconds)}, "
            f"result serialize {_fmt_secs(totals.result_serialize_seconds)}"
        )
    return "\n".join(lines)


def render_hotspot_table(jobs: Iterable[JobMetrics], top_n: int = 15) -> str:
    """Aggregated profiler hotspots over every profiled task in the log.

    Returns an empty string when no task carried profile rows (profiling
    off, or a pre-v3 log).
    """
    profiles = [
        rec.profile
        for job in jobs
        for stage in job.stages
        for rec in stage.tasks
        if rec.profile
    ]
    if not profiles:
        return ""
    rows = aggregate_hotspots(profiles)[:top_n]
    header = f"{'tottime':>9} {'cumtime':>9} {'ncalls':>9} {'tasks':>5}  function"
    lines = [
        f"== profiler hotspots ({len(profiles)} profiled task attempts) ==",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{_fmt_secs(row['tottime']):>9} {_fmt_secs(row['cumtime']):>9} "
            f"{row['ncalls']:>9} {row['tasks']:>5}  {row['func']}"
        )
    return "\n".join(lines)


def aggregate_cache_stats(jobs: Iterable[JobMetrics]) -> dict:
    """Whole-log cache/shuffle rollup used by the CLI footer and benches."""
    hits = misses = remote = shuffle_bytes = shuffle_records = 0
    task_seconds = 0.0
    for job in jobs:
        totals = job.totals()
        hits += totals.cache_hits
        misses += totals.cache_misses
        remote += totals.remote_cache_hits
        shuffle_bytes += totals.shuffle_bytes_written
        shuffle_records += totals.shuffle_records_read
        task_seconds += job.total_task_seconds
    accesses = hits + misses
    return {
        "cache_hits": hits,
        "cache_misses": misses,
        "remote_cache_hits": remote,
        "cache_hit_rate": hits / accesses if accesses else 0.0,
        "shuffle_bytes_written": shuffle_bytes,
        "shuffle_records_read": shuffle_records,
        "total_task_seconds": task_seconds,
    }


def render_history(jobs: list[JobMetrics]) -> str:
    """Full ``sparkscore history`` report over an event log."""
    if not jobs:
        return "(event log contains no jobs)"
    parts = [render_job_summary(job) for job in jobs]
    hotspots = render_hotspot_table(jobs)
    if hotspots:
        parts.append(hotspots)
    agg = aggregate_cache_stats(jobs)
    total_wall = sum(j.wall_seconds for j in jobs)
    total_cp = sum(critical_path(j).critical_seconds for j in jobs)
    parts.append(
        f"== overall: {len(jobs)} jobs ==\n"
        f"   wall {_fmt_secs(total_wall)}  task time {_fmt_secs(agg['total_task_seconds'])}  "
        f"critical path {_fmt_secs(total_cp)}\n"
        f"   cache hit rate {agg['cache_hit_rate']:.1%} "
        f"({agg['cache_hits']} hits / {agg['cache_misses']} misses)\n"
        f"   shuffle volume {_fmt_bytes(agg['shuffle_bytes_written'])}"
    )
    return "\n\n".join(parts)


__all__ = [
    "percentile",
    "StageSummary",
    "summarize_stage",
    "CriticalPathResult",
    "critical_path",
    "render_stage_table",
    "render_job_summary",
    "render_hotspot_table",
    "render_history",
    "aggregate_cache_stats",
]
