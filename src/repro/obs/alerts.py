"""Declarative alerting rules evaluated against the in-memory TSDB.

A rule (:class:`AlertRule`) describes a condition over one metric family:

- ``threshold`` -- the latest value compared against a bound
  (``engine_executor_rss_bytes > 2e9``);
- ``rate`` -- the per-second increase over a trailing window compared
  against a bound (``rate(engine_blocks_spilled_total[10s]) > 0``);
- ``absence`` -- the value has not *changed* for longer than the window
  (a heartbeat counter that stopped incrementing).

Rules are evaluated per label set: every series matching the rule's
metric (and optional label filter) carries its own independent state
machine::

    inactive -> pending -> firing -> resolved -> inactive

A condition must hold continuously for ``for_seconds`` before the alert
fires (the *pending* phase absorbs flapping).  Firing posts
:class:`~repro.engine.listener.AlertFired` on the listener bus and
notifies sinks; recovery posts
:class:`~repro.engine.listener.AlertResolved`.  An optional non-serialized
``gate`` callable can veto evaluation for a given label set -- the
built-in heartbeat-loss rule uses it to only watch executors that
currently hold in-flight tasks (idle executors legitimately stop
heartbeating; see :meth:`repro.engine.heartbeat.HeartbeatHub.busy_executors`).

:class:`AlertManager` owns the rules, the per-(rule, series) states, and
a bounded transition history; it is driven by the metrics sampler's tick
hook, so alerting costs nothing unless the sampler runs.  Built-in rules
(:func:`builtin_rules`) cover what the engine already measures: heartbeat
loss, GC-pause pressure, shuffle-spill growth, straggler rate, and cache
thrash.  User rules load from JSON via :meth:`AlertRule.from_dict`
(``--alert-rules rules.json``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.engine.listener import AlertFired, AlertResolved
from repro.obs.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.listener import ListenerBus
    from repro.obs.timeseries import Series, TimeSeriesStore

log = get_logger("repro.obs.alerts")

#: rule kinds -> how the condition value is computed from a series
KINDS = ("threshold", "rate", "absence")
#: alert states, in lifecycle order
STATES = ("inactive", "pending", "firing", "resolved")

_OPS: dict[str, Callable[[float, float], bool]] = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


@dataclass
class AlertRule:
    """One declarative alerting rule (JSON-serializable except ``gate``)."""

    name: str
    metric: str
    kind: str = "threshold"        # threshold | rate | absence
    op: str = ">"
    threshold: float = 0.0
    window: float = 10.0           # rate/absence lookback seconds
    for_seconds: float = 0.0       # pending dwell before firing
    severity: str = "warning"      # info | warning | critical
    description: str = ""
    labels: dict = field(default_factory=dict)  # label filter (subset match)
    #: optional veto: gate(labels_dict) -> bool; not serialized
    gate: Callable[[dict], bool] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown rule kind {self.kind!r}; expected one of {KINDS}")
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison {self.op!r}; expected one of {sorted(_OPS)}")

    def condition_value(self, series: "Series", now: float) -> float:
        if self.kind == "rate":
            return series.rate(self.window, now)
        if self.kind == "absence":
            return series.seconds_since_change(now)
        latest = series.latest()
        return latest[1] if latest else 0.0

    def holds(self, series: "Series", now: float) -> tuple[bool, float]:
        value = self.condition_value(series, now)
        if self.kind == "absence":
            # absence compares staleness against the window, not threshold
            return value > self.window, value
        return _OPS[self.op](value, self.threshold), value

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "kind": self.kind,
            "op": self.op,
            "threshold": self.threshold,
            "window": self.window,
            "for_seconds": self.for_seconds,
            "severity": self.severity,
            "description": self.description,
            "labels": dict(self.labels),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "AlertRule":
        known = {
            "name", "metric", "kind", "op", "threshold", "window",
            "for_seconds", "severity", "description", "labels",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown alert rule fields: {sorted(unknown)}")
        return cls(**{k: data[k] for k in known if k in data})


def load_rules(path: str) -> list[AlertRule]:
    """Load a JSON rule file: either a list of rules or {"rules": [...]}."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, Mapping):
        data = data.get("rules", [])
    return [AlertRule.from_dict(entry) for entry in data]


@dataclass
class AlertState:
    """Live state for one (rule, series) pair."""

    rule: AlertRule
    labels: dict
    state: str = "inactive"
    since: float = 0.0           # when the current state was entered
    value: float = 0.0           # last computed condition value
    fired_count: int = 0

    def to_dict(self) -> dict:
        return {
            "rule": self.rule.name,
            "severity": self.rule.severity,
            "metric": self.rule.metric,
            "labels": dict(self.labels),
            "state": self.state,
            "since": self.since,
            "value": self.value,
            "fired_count": self.fired_count,
        }


class AlertManager:
    """Evaluates rules against a :class:`TimeSeriesStore` each tick."""

    def __init__(
        self,
        store: "TimeSeriesStore",
        bus: "ListenerBus | None" = None,
        rules: list[AlertRule] | None = None,
        history_capacity: int = 256,
    ) -> None:
        self.store = store
        self.bus = bus
        self.rules: list[AlertRule] = list(rules or [])
        self._states: dict[tuple[str, tuple], AlertState] = {}
        self.history: list[dict] = []
        self.history_capacity = history_capacity
        self._sinks: list[Callable[[dict], None]] = []
        self.evaluations = 0

    def add_rule(self, rule: AlertRule) -> None:
        self.rules.append(rule)

    def add_sink(self, sink: Callable[[dict], None]) -> None:
        """Sinks receive each firing/resolved transition as a dict."""
        self._sinks.append(sink)

    # -- evaluation -------------------------------------------------------

    def evaluate(self, now: float | None = None) -> list[dict]:
        """One evaluation pass; returns the transitions it produced."""
        if now is None:
            now = time.perf_counter()
        self.evaluations += 1
        transitions: list[dict] = []
        for rule in self.rules:
            for series in self.store.all_series(rule.metric):
                if rule.labels and not (
                    set((str(k), str(v)) for k, v in rule.labels.items())
                    <= set(series.labels)
                ):
                    continue
                labels = dict(series.labels)
                if rule.gate is not None:
                    try:
                        if not rule.gate(labels):
                            # gated out: clear any stale pending state so a
                            # half-armed alert never fires on re-entry
                            st = self._states.get((rule.name, series.labels))
                            if st is not None and st.state == "pending":
                                st.state = "inactive"
                                st.since = now
                            continue
                    except Exception:
                        continue
                key = (rule.name, series.labels)
                st = self._states.get(key)
                if st is None:
                    st = self._states[key] = AlertState(rule, labels, since=now)
                holds, value = rule.holds(series, now)
                st.value = value
                transition = self._advance(st, holds, now)
                if transition is not None:
                    transitions.append(transition)
        return transitions

    def _advance(self, st: AlertState, holds: bool, now: float) -> dict | None:
        rule = st.rule
        if holds:
            if st.state in ("inactive", "resolved"):
                st.state = "pending"
                st.since = now
            if st.state == "pending" and now - st.since >= rule.for_seconds:
                st.state = "firing"
                st.since = now
                st.fired_count += 1
                return self._emit(st, "firing", now)
            return None
        if st.state == "firing":
            st.state = "resolved"
            st.since = now
            return self._emit(st, "resolved", now)
        if st.state == "pending":
            st.state = "inactive"
            st.since = now
        return None

    def _emit(self, st: AlertState, transition: str, now: float) -> dict:
        record = {
            "time": now,
            "transition": transition,
            "rule": st.rule.name,
            "severity": st.rule.severity,
            "metric": st.rule.metric,
            "labels": dict(st.labels),
            "value": st.value,
            "description": st.rule.description,
        }
        self.history.append(record)
        if len(self.history) > self.history_capacity:
            del self.history[: len(self.history) - self.history_capacity]
        if self.bus is not None:
            event_cls = AlertFired if transition == "firing" else AlertResolved
            self.bus.post(event_cls(
                rule=st.rule.name,
                severity=st.rule.severity,
                metric=st.rule.metric,
                labels=dict(st.labels),
                value=st.value,
                description=st.rule.description,
            ))
        for sink in self._sinks:
            try:
                sink(record)
            except Exception:  # sink isolation, same policy as the bus
                pass
        return record

    # -- introspection ----------------------------------------------------

    def states(self) -> list[dict]:
        return [st.to_dict() for st in self._states.values()]

    def firing(self) -> list[dict]:
        return [st.to_dict() for st in self._states.values() if st.state == "firing"]

    def snapshot(self) -> dict:
        """JSON-ready view for ``/api/alerts`` and flight-recorder bundles."""
        return {
            "rules": [r.to_dict() for r in self.rules],
            "states": self.states(),
            "history": list(self.history),
        }


# -- sinks ----------------------------------------------------------------


class ConsoleAlertSink:
    """Writes firing/resolved transitions through the structured log bus."""

    def __call__(self, record: dict) -> None:
        level = "error" if record["severity"] == "critical" else "warning"
        getattr(log, level)(
            f"alert {record['transition']}: {record['rule']}",
            rule=record["rule"],
            severity=record["severity"],
            metric=record["metric"],
            value=record["value"],
            **{f"label_{k}": v for k, v in record["labels"].items()},
        )


class JsonlAlertSink:
    """Appends one JSON object per transition to a file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "a", encoding="utf-8")

    def __call__(self, record: dict) -> None:
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


# -- built-in rules --------------------------------------------------------


def builtin_rules(
    heartbeat_gate: Callable[[dict], bool] | None = None,
    heartbeat_window: float = 2.0,
) -> list[AlertRule]:
    """The stock rule set, wired to series the engine already exports.

    ``heartbeat_gate`` receives the heartbeat series' labels
    (``{"executor": eid}``) and should return True only when that
    executor currently holds in-flight work; without a gate the
    heartbeat-loss rule would fire for every legitimately idle executor.
    """
    return [
        AlertRule(
            name="heartbeat_loss",
            metric="engine_executor_heartbeats_total",
            kind="absence",
            window=heartbeat_window,
            for_seconds=0.0,
            severity="critical",
            description="busy executor stopped heartbeating",
            gate=heartbeat_gate,
        ),
        AlertRule(
            name="gc_pause_pressure",
            metric="engine_task_gc_pause_seconds_total",
            kind="rate",
            op=">",
            threshold=0.1,       # >100ms of GC pause per wall second
            window=5.0,
            for_seconds=1.0,
            severity="warning",
            description="GC pauses consuming >10% of wall time",
        ),
        AlertRule(
            name="shuffle_spill_growth",
            metric="engine_blocks_spilled_total",
            kind="rate",
            op=">",
            threshold=0.0,
            window=10.0,
            for_seconds=0.0,
            severity="warning",
            description="cache blocks spilling to disk",
        ),
        AlertRule(
            name="straggler_rate",
            metric="engine_stragglers_total",
            kind="rate",
            op=">",
            threshold=0.0,
            window=15.0,
            for_seconds=0.0,
            severity="warning",
            description="stages flagging straggler tasks",
        ),
        AlertRule(
            name="cache_thrash",
            metric="engine_blocks_evicted_total",
            kind="rate",
            op=">",
            threshold=5.0,       # sustained evictions per second
            window=5.0,
            for_seconds=1.0,
            severity="warning",
            description="cache evicting faster than it can serve",
        ),
    ]


__all__ = [
    "AlertRule",
    "AlertState",
    "AlertManager",
    "ConsoleAlertSink",
    "JsonlAlertSink",
    "builtin_rules",
    "load_rules",
    "KINDS",
    "STATES",
]
