"""Telemetry-driven tuning advisor: the brain behind ``sparkscore doctor``.

Rule-based analyzers over everything the engine records -- job/stage/task
metrics (in-memory or reloaded from an event log), telemetry side-channel
records, and the process-wide metrics registry -- producing ranked,
actionable :class:`Recommendation` objects.  Each recommendation carries
the *evidence* that fired it (metric values, stage ids) so a skeptical
operator can check the reasoning, and an ``action`` string concrete
enough to paste into a config or script.

The rules encode the paper's own tuning playbook:

- skewed stages -> repartition (Section V's skew tail; the dominant
  resampling-cost pathology in Segal et al. / Larson & Owen workloads);
- cache thrash -> spillable storage levels / more executor memory
  (the paper's memory-pressure analysis);
- executor/core sizing -> many small containers (Experiment C,
  Tables VII/VIII: 126 x 2-core beat 42 x 6-core on equal hardware);
- GC pressure, serializer choice, and task granularity -> the engine's
  own data-plane knobs.

Pure functions over plain data: ``diagnose()`` never needs a live
context, which is what lets ``doctor`` run on a cold event log.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.obs.diagnostics import (
    CachePressureReport,
    SkewReport,
    StragglerReport,
    analyze_cache_pressure,
    detect_skew,
    detect_stragglers,
    median,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.metrics import JobMetrics, StageMetrics
    from repro.obs.registry import Registry

#: severity ordering for ranking (higher sorts first)
SEVERITIES = {"critical": 3, "warning": 2, "info": 1}

#: mirror of the paper's Experiment C winner (Tables VII/VIII): on equal
#: aggregate hardware, many small 2-core containers beat few large ones.
PAPER_BEST_CONTAINER_CORES = 2


@dataclass
class Recommendation:
    """One actionable finding, with the evidence that fired it."""

    rule: str
    severity: str  # critical | warning | info
    title: str
    action: str
    evidence: dict = field(default_factory=dict)
    stage_id: int | None = None
    job_id: int | None = None
    #: rule-relative magnitude used to rank within a severity band
    score: float = 0.0

    def to_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "severity": self.severity,
            "title": self.title,
            "action": self.action,
            "evidence": self.evidence,
            "score": round(self.score, 4),
        }
        if self.stage_id is not None:
            out["stage_id"] = self.stage_id
        if self.job_id is not None:
            out["job_id"] = self.job_id
        return out


@dataclass
class DiagnosisInput:
    """Everything the rules may look at; any piece may be absent."""

    jobs: list = field(default_factory=list)
    telemetry: list = field(default_factory=list)
    cache: CachePressureReport | None = None
    skew_max_over_median: float = 4.0
    straggler_multiplier: float = 3.0
    straggler_min_seconds: float = 0.1
    min_tasks: int = 4
    #: whether adaptive query execution was enabled for the run; ``None``
    #: means unknown (e.g. a cold event log predating the field)
    adaptive: bool | None = None
    #: inference side-channel records (v8 event logs / live monitors):
    #: dicts with ``kind`` of ``"batch"`` or ``"converged"``
    inference: list = field(default_factory=list)

    def stages(self):
        for job in self.jobs:
            for stage in job.stages:
                yield job, stage

    def inference_final_batches(self) -> dict:
        """Last ``kind="batch"`` record per resampling method."""
        final: dict[str, dict] = {}
        for rec in self.inference:
            if isinstance(rec, dict) and rec.get("kind") == "batch":
                method = str(rec.get("method", "resampling"))
                final[method] = rec
        return final


# -- individual rules ---------------------------------------------------------


def _round_evidence(value: float) -> float:
    return round(value, 4) if math.isfinite(value) else value


def rule_repartition_skew(inp: DiagnosisInput) -> list[Recommendation]:
    """Skewed stage -> split its partitions so the tail spreads out.

    Recommended count = current tasks x min(ceil(max/median), 4): enough
    splits that the heaviest partition's work spreads across the median's
    worth of peers, capped so one pathological stage doesn't explode the
    task count.
    """
    out = []
    for job, stage in inp.stages():
        reports = detect_skew(
            stage, max_over_median=inp.skew_max_over_median, min_tasks=inp.min_tasks
        )
        # one recommendation per stage: use the worst metric as evidence
        if not reports:
            continue
        worst = max(reports, key=lambda r: r.max_over_median)
        factor = min(math.ceil(worst.max_over_median), 4)
        target = stage.num_tasks * factor
        out.append(
            Recommendation(
                rule="repartition-skewed-stage",
                severity="warning",
                title=(
                    f"stage {stage.stage_id} ({stage.name}) is skewed: max "
                    f"{worst.metric} is {worst.max_over_median:.1f}x the median"
                ),
                action=(
                    f"repartition to ~{target} partitions before this stage "
                    f"(e.g. rdd.repartition({target})); inspect placement with "
                    f"rdd.explain()"
                ),
                evidence={
                    "metrics": [r.to_dict() for r in reports],
                    "num_tasks": stage.num_tasks,
                    "recommended_partitions": target,
                },
                stage_id=stage.stage_id,
                job_id=job.job_id,
                score=worst.max_over_median,
            )
        )
    return out


def rule_stragglers(inp: DiagnosisInput) -> list[Recommendation]:
    """Straggling tasks; escalates when they concentrate on one executor."""
    out = []
    for job, stage in inp.stages():
        stragglers = detect_stragglers(
            stage,
            multiplier=inp.straggler_multiplier,
            min_seconds=inp.straggler_min_seconds,
            min_tasks=inp.min_tasks,
        )
        if not stragglers:
            continue
        by_executor: dict[str, list[StragglerReport]] = {}
        for s in stragglers:
            by_executor.setdefault(s.executor_id, []).append(s)
        hot_executor, hot = max(by_executor.items(), key=lambda kv: len(kv[1]))
        concentrated = len(hot) == len(stragglers) and len(stragglers) > 1
        worst = max(s.ratio for s in stragglers)
        if concentrated:
            title = (
                f"stage {stage.stage_id}: all {len(stragglers)} stragglers ran "
                f"on executor {hot_executor} (slow-executor signature)"
            )
            action = (
                "suspect the executor, not the data: check its heartbeat RSS/GC "
                "series; enable speculative execution (spark.speculation=true) "
                "so twin attempts on healthy peers outrun it, or reduce "
                "executor_cores / exclude the host"
            )
        else:
            title = (
                f"stage {stage.stage_id} ({stage.name}): {len(stragglers)} "
                f"task(s) ran >= {inp.straggler_multiplier:g}x the stage median"
            )
            action = (
                "skew-spread the slow partitions (repartition) or raise "
                "parallelism so a straggling task hides behind more peers"
            )
        out.append(
            Recommendation(
                rule="stragglers",
                severity="warning",
                title=title,
                action=action,
                evidence={
                    "stragglers": [s.to_dict() for s in stragglers],
                    "worst_ratio": _round_evidence(worst),
                },
                stage_id=stage.stage_id,
                job_id=job.job_id,
                score=worst,
            )
        )
    return out


def rule_cache_thrash(inp: DiagnosisInput) -> list[Recommendation]:
    """High eviction ratio + poor hit rate -> the cache is thrashing."""
    cache = inp.cache
    if cache is None or cache.blocks_cached < 4:
        return []
    if cache.eviction_ratio < 0.5 or cache.hit_rate >= 0.6:
        return []
    spilled_all = cache.blocks_spilled >= cache.blocks_evicted > 0
    action = (
        "raise executor_memory / storage_fraction, or persist with a "
        "serialized storage level (MEMORY_ONLY_SER halves typical footprint "
        "for numeric rows)"
    )
    if not spilled_all:
        action += (
            "; evicted blocks are being recomputed -- switch persist() to "
            "MEMORY_AND_DISK so evictions spill instead of recompute"
        )
    out = [
        Recommendation(
            rule="cache-thrash",
            severity="critical" if cache.hit_rate < 0.3 else "warning",
            title=(
                f"cache thrash: {cache.blocks_evicted}/{cache.blocks_cached} "
                f"cached blocks evicted, hit rate {cache.hit_rate:.0%}"
            ),
            action=action,
            evidence=cache.to_dict(),
            score=cache.eviction_ratio + (1 - cache.hit_rate),
        )
    ]
    return out


def rule_gc_pressure(inp: DiagnosisInput) -> list[Recommendation]:
    """GC pauses eating a material share of task time."""
    out = []
    for job in inp.jobs:
        totals = job.totals()
        task_seconds = job.total_task_seconds
        if task_seconds < 0.5:
            continue
        share = totals.gc_pause_seconds / task_seconds if task_seconds else 0.0
        if share <= 0.10:
            continue
        out.append(
            Recommendation(
                rule="gc-pressure",
                severity="warning",
                title=(
                    f"job {job.job_id}: GC pauses are {share:.0%} of task time "
                    f"({totals.gc_pause_seconds:.2f}s of {task_seconds:.2f}s)"
                ),
                action=(
                    "reduce per-task allocation churn: raise block_size so "
                    "fewer, larger batches flow; or grow executor_memory so "
                    "the collector runs less often"
                ),
                evidence={
                    "gc_pause_seconds": _round_evidence(totals.gc_pause_seconds),
                    "task_seconds": _round_evidence(task_seconds),
                    "share": _round_evidence(share),
                },
                job_id=job.job_id,
                score=share,
            )
        )
    return out


def rule_serializer(inp: DiagnosisInput) -> list[Recommendation]:
    """Large uncompressed shuffles -> the compressed data plane is free wall-clock."""
    out = []
    for job in inp.jobs:
        totals = job.totals()
        written = totals.shuffle_bytes_written
        framed = totals.shuffle_compressed_bytes
        # framed == raw means no compression happened; only worth flagging
        # when real volume moved (>= 8 MiB)
        if written < 8 * 1024 * 1024 or framed < written:
            continue
        out.append(
            Recommendation(
                rule="uncompressed-shuffle",
                severity="info",
                title=(
                    f"job {job.job_id} shuffled {written / 1e6:.1f} MB "
                    "uncompressed"
                ),
                action=(
                    "set serializer='compressed' (spark.engine.serializer): "
                    "zlib-framed shuffle trades cheap CPU for bytes moved"
                ),
                evidence={
                    "shuffle_bytes_written": written,
                    "shuffle_compressed_bytes": framed,
                },
                job_id=job.job_id,
                score=written / 1e6,
            )
        )
    return out


def rule_tiny_tasks(inp: DiagnosisInput) -> list[Recommendation]:
    """Many sub-scheduling-overhead tasks -> coarsen partitioning."""
    out = []
    for job, stage in inp.stages():
        durations = [t.duration_seconds for t in stage.tasks if t.succeeded]
        if len(durations) < 16:
            continue
        med = median(durations)
        if med >= 0.02:
            continue
        target = max(4, len(durations) // 4)
        out.append(
            Recommendation(
                rule="tiny-tasks",
                severity="info",
                title=(
                    f"stage {stage.stage_id} ran {len(durations)} tasks with a "
                    f"{med * 1000:.1f} ms median -- scheduling overhead dominates"
                ),
                action=(
                    f"coalesce to ~{target} partitions or raise block_size; "
                    "per-task overhead is amortized by bigger batches"
                ),
                evidence={
                    "num_tasks": len(durations),
                    "median_task_seconds": _round_evidence(med),
                    "recommended_partitions": target,
                },
                stage_id=stage.stage_id,
                job_id=job.job_id,
                score=1.0 / (med + 1e-6),
            )
        )
    return out


def rule_container_sizing(inp: DiagnosisInput) -> list[Recommendation]:
    """Executor/core sizing guidance echoing the paper's Experiment C.

    Always fires (info) when any job ran: the container sweep's conclusion
    -- split the same hardware into many small executors -- holds for this
    engine's process backend too, where per-worker heaps stay small and
    the OS scheduler load-balances.
    """
    if not inp.jobs:
        return []
    executors: set[str] = set()
    total_tasks = 0
    for _, stage in inp.stages():
        total_tasks += len(stage.tasks)
        for t in stage.tasks:
            executors.add(t.executor_id)
    n_exec = max(1, len(executors))
    return [
        Recommendation(
            rule="container-sizing",
            severity="info",
            title=(
                f"observed {n_exec} executor(s) over {total_tasks} task "
                "attempts; prefer many small executors"
            ),
            action=(
                f"size executors at {PAPER_BEST_CONTAINER_CORES} cores each and "
                "scale num_executors instead (the paper's container sweep, "
                "Tables VII/VIII: 126 x 2-core beat 42 x 6-core on the same "
                "hardware); on this engine: num_executors=N, executor_cores=2"
            ),
            evidence={
                "executors_observed": sorted(executors),
                "task_attempts": total_tasks,
                "paper_best_shape": "126 x (2 cores, 3 GiB)",
            },
            score=0.0,
        )
    ]


def rule_enable_adaptive(inp: DiagnosisInput) -> list[Recommendation]:
    """Skew or stragglers observed while AQE was off -> turn it on.

    The adaptive planner fixes exactly these two pathologies at runtime
    (bucket splits for skew, speculative twins for stragglers) without
    touching the workload, so evidence of either while adaptivity is
    disabled is a one-line config win.
    """
    if inp.adaptive is not False:
        return []
    skewed: list[int] = []
    straggling: list[int] = []
    for _, stage in inp.stages():
        if detect_skew(
            stage, max_over_median=inp.skew_max_over_median, min_tasks=inp.min_tasks
        ):
            skewed.append(stage.stage_id)
        if detect_stragglers(
            stage,
            multiplier=inp.straggler_multiplier,
            min_seconds=inp.straggler_min_seconds,
            min_tasks=inp.min_tasks,
        ):
            straggling.append(stage.stage_id)
    if not skewed and not straggling:
        return []
    what = []
    if skewed:
        what.append(f"skew in stage(s) {sorted(set(skewed))}")
    if straggling:
        what.append(f"straggler(s) in stage(s) {sorted(set(straggling))}")
    return [
        Recommendation(
            rule="enable-adaptive-execution",
            severity="warning",
            title=(
                "adaptive execution is off but the run shows "
                + " and ".join(what)
            ),
            action=(
                "set spark.adaptive.enabled=true (or pass --adaptive): the "
                "planner splits oversized shuffle buckets and races "
                "speculative twins against stragglers at runtime, with "
                "bit-identical results"
            ),
            evidence={
                "skewed_stages": sorted(set(skewed)),
                "straggling_stages": sorted(set(straggling)),
                "adaptive_enabled": False,
            },
            score=float(len(set(skewed)) + len(set(straggling))),
        )
    ]


def rule_enable_early_stop(inp: DiagnosisInput) -> list[Recommendation]:
    """Resampling ran past decisiveness while early stopping was off.

    The convergence monitor records when every SNP-set's p-value CI became
    decisive against alpha; replicates folded after that point refined
    estimates nobody was waiting on.  When the decisive point arrived in
    at most ~half the replicates actually run, ``--early-stop`` is close
    to a 2x-or-better wall-clock win with CI-bounded agreement.
    """
    out = []
    converged_at: dict[str, int] = {}
    for rec in inp.inference:
        if not isinstance(rec, dict) or rec.get("kind") != "batch":
            continue
        method = str(rec.get("method", "resampling"))
        sets_total = int(rec.get("sets_total", 0) or 0)
        if sets_total and rec.get("sets_converged") == sets_total:
            converged_at.setdefault(method, int(rec.get("replicates_total", 0)))
    for method, final in inp.inference_final_batches().items():
        if final.get("early_stop"):
            continue
        total = int(final.get("replicates_total", 0) or 0)
        decisive = converged_at.get(method)
        if decisive is None or total <= 0 or decisive > total // 2:
            continue
        wasted = total - decisive
        out.append(
            Recommendation(
                rule="enable-early-stop",
                severity="warning",
                title=(
                    f"{method} resampling ran {total} replicates but every "
                    f"SNP-set was statistically decided by replicate {decisive}"
                ),
                action=(
                    "pass --early-stop (spark.inference.earlyStop=true): the "
                    "convergence monitor stops once every set's p-value CI "
                    "clears alpha, keeping significance calls identical within "
                    "the CI guarantee"
                ),
                evidence={
                    "method": method,
                    "replicates_total": total,
                    "decisive_at": decisive,
                    "replicates_past_decisiveness": wasted,
                    "sets_total": int(final.get("sets_total", 0) or 0),
                },
                score=wasted / max(total, 1),
            )
        )
    return out


def rule_insufficient_resamples(inp: DiagnosisInput) -> list[Recommendation]:
    """n_resamples too small for the smallest observed p-value.

    The paper ties p-value precision directly to B; the planning rule
    (binomial coefficient of variation, see
    :func:`repro.stats.resampling.pvalues.required_resamples`) gives the
    concrete B needed to pin the smallest observed p within 10% relative
    error.  Fires when the run used materially fewer.
    """
    from repro.stats.resampling.pvalues import required_resamples

    out = []
    for method, final in inp.inference_final_batches().items():
        total = int(final.get("replicates_total", 0) or 0)
        if total <= 0:
            continue
        min_p = float(final.get("min_pvalue", 1.0) or 1.0)
        # the empirical floor: a zero-exceedance set reports p ~ 1/(B+1)
        floor = 1.0 / (total + 1.0)
        target = min(max(min_p, floor), 1.0 - 1e-12)
        if target >= 1.0 - 1e-9:
            continue
        required = required_resamples(target)
        if required <= total:
            continue
        out.append(
            Recommendation(
                rule="insufficient-resamples",
                severity="warning" if required > 2 * total else "info",
                title=(
                    f"{method}: smallest observed p-value ~{target:.2e} needs "
                    f"~{required} resamples for 10% relative error; run used "
                    f"{total}"
                ),
                action=(
                    f"raise n_resamples to >= {required} (sparkscore analyze "
                    f"--iterations {required}), or accept the wider CI the "
                    "convergence panel shows for the extreme sets"
                ),
                evidence={
                    "method": method,
                    "replicates_total": total,
                    "min_pvalue": _round_evidence(target),
                    "required_resamples": required,
                    "relative_error": 0.1,
                },
                score=required / max(total, 1),
            )
        )
    return out


RULES = (
    rule_repartition_skew,
    rule_stragglers,
    rule_enable_adaptive,
    rule_enable_early_stop,
    rule_insufficient_resamples,
    rule_cache_thrash,
    rule_gc_pressure,
    rule_serializer,
    rule_tiny_tasks,
    rule_container_sizing,
)


def diagnose(
    jobs: Sequence["JobMetrics"],
    telemetry: Sequence[dict] | None = None,
    registry: "Registry" | None = None,
    cache: CachePressureReport | None = None,
    *,
    skew_max_over_median: float = 4.0,
    straggler_multiplier: float = 3.0,
    straggler_min_seconds: float = 0.1,
    min_tasks: int = 4,
    adaptive: bool | None = None,
    inference: Sequence[dict] | None = None,
) -> list[Recommendation]:
    """Run every rule; return recommendations ranked most-urgent first.

    ``cache`` overrides the registry-derived pressure report (the offline
    path: doctor reconstructs it from event-log task metrics because a
    cold process's registry is empty).
    """
    if cache is None:
        cache = analyze_cache_pressure(registry)
    inp = DiagnosisInput(
        jobs=list(jobs),
        telemetry=list(telemetry or ()),
        cache=cache,
        skew_max_over_median=skew_max_over_median,
        straggler_multiplier=straggler_multiplier,
        straggler_min_seconds=straggler_min_seconds,
        min_tasks=min_tasks,
        adaptive=adaptive,
        inference=list(inference or ()),
    )
    recs: list[Recommendation] = []
    for rule in RULES:
        recs.extend(rule(inp))
    recs.sort(key=lambda r: (SEVERITIES.get(r.severity, 0), r.score), reverse=True)
    return recs


def cache_pressure_from_jobs(jobs: Sequence["JobMetrics"]) -> CachePressureReport:
    """Offline approximation of cache pressure from task metrics alone.

    Event logs don't carry the BlockManager counters, but task metrics
    record hits/misses; block churn is invisible, so eviction fields stay
    zero and the thrash rule keys off hit rate only when this is used.
    """
    report = CachePressureReport()
    for job in jobs:
        totals = job.totals()
        report.cache_hits += totals.cache_hits
        report.cache_misses += totals.cache_misses
    return report


# -- rendering ----------------------------------------------------------------


def render_recommendations(recs: Sequence[Recommendation]) -> str:
    """Human-readable report: ranked table plus per-item action lines."""
    if not recs:
        return "doctor: no findings -- telemetry looks healthy\n"
    rows = []
    for i, rec in enumerate(recs, start=1):
        scope = f"stage {rec.stage_id}" if rec.stage_id is not None else (
            f"job {rec.job_id}" if rec.job_id is not None else "-"
        )
        rows.append((str(i), rec.severity, rec.rule, scope, rec.title))
    headers = ("#", "severity", "rule", "scope", "finding")
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows)) for c in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    lines.append("")
    for i, rec in enumerate(recs, start=1):
        lines.append(f"[{i}] {rec.title}")
        lines.append(f"    action: {rec.action}")
    return "\n".join(lines) + "\n"


def recommendations_to_json(recs: Sequence[Recommendation]) -> str:
    return json.dumps([r.to_dict() for r in recs], indent=2)


__all__ = [
    "Recommendation",
    "DiagnosisInput",
    "RULES",
    "SEVERITIES",
    "diagnose",
    "cache_pressure_from_jobs",
    "render_recommendations",
    "recommendations_to_json",
    "rule_repartition_skew",
    "rule_stragglers",
    "rule_enable_adaptive",
    "rule_enable_early_stop",
    "rule_insufficient_resamples",
    "rule_cache_thrash",
    "rule_gc_pressure",
    "rule_serializer",
    "rule_tiny_tasks",
    "rule_container_sizing",
]
