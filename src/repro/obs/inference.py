"""Inference observability: convergence telemetry for resampling p-values.

Brute-force resampling is the paper's cost driver, yet the replicate loops
are blind: they grind through a fixed ``n_resamples`` with no signal about
which SNP-sets are already statistically decided.  This module makes the
*statistic itself* observable and then acts on it -- the same
telemetry-then-action shape the skew work proved out.

:class:`ConvergenceMonitor` folds each replicate batch's per-set exceedance
counts into running p-value estimates with binomial confidence intervals
(Wilson score or Clopper-Pearson), classifies every SNP-set as
``decided_significant`` / ``decided_null`` / ``undecided`` against a target
alpha, and emits typed listener-bus events
(:class:`~repro.engine.listener.InferenceBatchCompleted`,
:class:`~repro.engine.listener.SnpSetConverged`) that downstream surfaces
consume: the metrics registry, the v8 event-log ``inference`` side channel,
``/api/inference`` and the dashboard convergence panel, ``sparkscore
history``/``doctor``, and flight-recorder bundles.

:class:`EarlyStopPolicy` closes the loop.  When attached (opt-in via
``inference_early_stop``), :meth:`ConvergenceMonitor.fold` masks converged
sets out of subsequent batches -- their exceedance counts and denominators
freeze at decision time -- and :attr:`ConvergenceMonitor.done` tells the
driving loop to stop once every set is decided.  Replicate *streams* are
untouched (batching and stopping change scheduling, never the statistics of
the replicates actually consumed), so:

- with the policy absent, ``counts += monitor.fold(batch_counts, width)``
  is bit-identical to ``counts += batch_counts`` -- monitoring is passive;
- with the policy attached, retained sets' counts stay exact and decided
  sets report the CI-bounded estimate frozen at their decision point
  (:meth:`ConvergenceMonitor.pvalues` handles the per-set denominators).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.engine.listener import InferenceBatchCompleted, SnpSetConverged

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.context import Context
    from repro.engine.listener import ListenerBus

#: set decision states
UNDECIDED = "undecided"
DECIDED_SIGNIFICANT = "decided_significant"
DECIDED_NULL = "decided_null"

#: supported CI methods (the ``inference_ci`` knob)
CI_METHODS = ("wilson", "clopper-pearson")

#: one-sided tail mass for the decision interval.  Decisions are made at
#: 99.9% two-sided confidence regardless of the target alpha: alpha is the
#: *threshold* being tested against, not the error rate of the sequential
#: test, and a tight interval keeps wrong early calls rare enough that the
#: CI drill's "identical significance calls" gate holds in practice.
DECISION_CONFIDENCE = 0.999

#: trajectory points kept per set (dashboard sparklines); oldest dropped
_TRAJECTORY_MAX = 256


def wilson_interval(
    count: int | np.ndarray, n: int, confidence: float = DECISION_CONFIDENCE
) -> tuple[np.ndarray, np.ndarray]:
    """Wilson score interval for a binomial proportion ``count / n``.

    Vectorized over ``count``; returns ``(low, high)`` arrays.  Unlike the
    Wald interval it behaves at p near 0 and 1 -- exactly where resampling
    p-values live -- without the cost of an exact method.
    """
    counts = np.asarray(count, dtype=np.float64)
    if n < 1:
        raise ValueError("n must be >= 1")
    z = _normal_quantile(0.5 + confidence / 2.0)
    phat = counts / n
    denom = 1.0 + z * z / n
    center = (phat + z * z / (2.0 * n)) / denom
    half = (z / denom) * np.sqrt(phat * (1.0 - phat) / n + z * z / (4.0 * n * n))
    low = np.clip(center - half, 0.0, 1.0)
    high = np.clip(center + half, 0.0, 1.0)
    return low, high


def clopper_pearson_interval(
    count: int | np.ndarray, n: int, confidence: float = DECISION_CONFIDENCE
) -> tuple[np.ndarray, np.ndarray]:
    """Exact (Clopper-Pearson) binomial interval via beta quantiles.

    Conservative by construction: coverage is always >= ``confidence``,
    which makes it the cautious choice for the early-stop policy at the
    price of slightly later decisions than Wilson.
    """
    from scipy.stats import beta

    counts = np.atleast_1d(np.asarray(count, dtype=np.float64))
    if n < 1:
        raise ValueError("n must be >= 1")
    tail = (1.0 - confidence) / 2.0
    low = np.zeros_like(counts)
    high = np.ones_like(counts)
    nz = counts > 0
    low[nz] = beta.ppf(tail, counts[nz], n - counts[nz] + 1)
    below = counts < n
    high[below] = beta.ppf(1.0 - tail, counts[below] + 1, n - counts[below])
    return np.clip(low, 0.0, 1.0), np.clip(high, 0.0, 1.0)


def _normal_quantile(q: float) -> float:
    """Standard normal quantile without a scipy dependency on the hot path
    (Acklam's rational approximation, |error| < 1.2e-9 -- far below what a
    stopping rule can perceive)."""
    if not 0.0 < q < 1.0:
        raise ValueError("q must be in (0, 1)")
    # coefficients for the central and tail regions
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if q < p_low:
        u = math.sqrt(-2.0 * math.log(q))
        return (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / (
            (((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0
        )
    if q > 1.0 - p_low:
        u = math.sqrt(-2.0 * math.log(1.0 - q))
        return -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / (
            (((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0
        )
    u = q - 0.5
    r = u * u
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * u / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


def binomial_interval(
    count: int | np.ndarray, n: int, method: str = "wilson",
    confidence: float = DECISION_CONFIDENCE,
) -> tuple[np.ndarray, np.ndarray]:
    """Dispatch on the ``inference_ci`` knob value."""
    if method == "wilson":
        return wilson_interval(count, n, confidence)
    if method == "clopper-pearson":
        return clopper_pearson_interval(count, n, confidence)
    raise ValueError(f"unknown CI method {method!r}; choose from {CI_METHODS}")


@dataclass
class EarlyStopPolicy:
    """Opt-in action half of the telemetry loop.

    When attached to a :class:`ConvergenceMonitor`, converged sets are
    masked out of subsequent batches (counts and denominators freeze at
    decision time) and the monitor reports ``done`` once every set is
    decided -- the driving loop then stops and banks the remaining
    replicates as ``replicates_saved``.
    """

    alpha: float = 0.05
    ci: str = "wilson"
    min_replicates: int = 64
    #: mask converged sets out of subsequent fold() increments.  The
    #: variant-level maxT path turns this off: step-down adjustment needs a
    #: common denominator across SNPs, so it stops the loop but never
    #: freezes individual counts.
    mask_converged: bool = True

    @classmethod
    def from_config(cls, config: Any) -> "EarlyStopPolicy | None":
        """The configured policy, or None when early stopping is off."""
        if not getattr(config, "inference_early_stop", False):
            return None
        return cls(
            alpha=config.inference_alpha,
            ci=config.inference_ci,
            min_replicates=config.inference_min_replicates,
        )


class ConvergenceMonitor:
    """Folds replicate batches into running p-value estimates with CIs.

    One monitor per resampling run.  Thread-compatible with the engine's
    synchronous listener bus; `fold` is called from the driving loop only.

    Without a policy the monitor is passive telemetry: :meth:`fold` returns
    its input unchanged (same array values, so accumulation stays
    bit-identical) and :attr:`done` is always False.
    """

    def __init__(
        self,
        n_sets: int,
        method: str = "resampling",
        planned_replicates: int = 0,
        set_names: Sequence[str] | None = None,
        alpha: float = 0.05,
        ci: str = "wilson",
        min_replicates: int = 64,
        bus: "ListenerBus | None" = None,
        policy: EarlyStopPolicy | None = None,
    ) -> None:
        if n_sets < 1:
            raise ValueError("n_sets must be >= 1")
        self.n_sets = n_sets
        self.method = method
        self.planned_replicates = int(planned_replicates)
        self.set_names = (
            list(set_names) if set_names is not None
            else [f"set_{k}" for k in range(n_sets)]
        )
        if len(self.set_names) != n_sets:
            raise ValueError("set_names must have one entry per set")
        self.policy = policy
        if policy is not None:
            alpha, ci, min_replicates = policy.alpha, policy.ci, policy.min_replicates
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if ci not in CI_METHODS:
            raise ValueError(f"unknown CI method {ci!r}; choose from {CI_METHODS}")
        self.alpha = float(alpha)
        self.ci = ci
        self.min_replicates = max(1, int(min_replicates))
        self.bus = bus
        #: per-set exceedance counts as accumulated by the caller (frozen
        #: for masked sets)
        self.exceed = np.zeros(n_sets, dtype=np.int64)
        #: per-set replicate denominators (diverge only under masking)
        self.denominators = np.zeros(n_sets, dtype=np.int64)
        #: replicates consumed by the driving loop (batch widths folded)
        self.replicates_total = 0
        self.batches_folded = 0
        #: replicates the policy avoided running (set by :meth:`finish`)
        self.replicates_saved = 0
        self.finished = False
        self.status = [UNDECIDED] * n_sets
        #: replicate count at which each set was decided (-1 = undecided)
        self.decided_at = np.full(n_sets, -1, dtype=np.int64)
        self._ci_low = np.zeros(n_sets, dtype=np.float64)
        self._ci_high = np.ones(n_sets, dtype=np.float64)
        #: per-set [replicates, phat, lo, hi] points for trajectory plots
        self.trajectories: list[list[list[float]]] = [[] for _ in range(n_sets)]
        self._started = time.perf_counter()
        self._mask = np.ones(n_sets, dtype=bool)
        self._posted_replicates = 0

    # -- folding -----------------------------------------------------------

    @property
    def masking(self) -> bool:
        return self.policy is not None and self.policy.mask_converged

    @property
    def done(self) -> bool:
        """True when an attached policy has decided every set."""
        return self.policy is not None and not bool(self._mask.any())

    @property
    def sets_converged(self) -> int:
        return int(self.n_sets - np.count_nonzero(self.decided_at < 0))

    def active_mask(self) -> np.ndarray:
        """Boolean mask of sets still accumulating (all True when passive)."""
        return self._mask.copy()

    def fold(self, batch_counts: np.ndarray, batch_width: int) -> np.ndarray:
        """Fold one batch of per-set exceedance counts; returns the
        increment the caller should add to its accumulator.

        Passive monitors return ``batch_counts`` unchanged.  Under a
        masking policy the increment is zeroed for sets already decided
        *before* this batch, freezing their counts and denominators.
        """
        batch_counts = np.asarray(batch_counts, dtype=np.int64)
        if batch_counts.shape != (self.n_sets,):
            raise ValueError("batch_counts must have one entry per set")
        if batch_width < 1:
            raise ValueError("batch_width must be >= 1")
        if self.masking and not self._mask.all():
            increment = np.where(self._mask, batch_counts, 0)
        else:
            increment = batch_counts
        self.exceed += increment
        active = self._mask if self.masking else np.ones(self.n_sets, dtype=bool)
        self.denominators[active] += batch_width
        self.replicates_total += batch_width
        self.batches_folded += 1
        self._classify()
        self._post_batch()
        return increment

    def _classify(self) -> None:
        """Recompute CIs for undecided sets and settle any that became
        decisive.  Decisions are sticky: once decided, a set's status,
        bounds, and (under masking) counts never move again."""
        open_sets = [k for k in range(self.n_sets) if self.status[k] == UNDECIDED]
        if not open_sets:
            return
        n = int(self.replicates_total)
        counts = self.exceed[open_sets]
        low, high = binomial_interval(counts, max(n, 1), self.ci)
        phat = counts / max(n, 1)
        newly: list[int] = []
        for i, k in enumerate(open_sets):
            self._ci_low[k] = low[i]
            self._ci_high[k] = high[i]
            traj = self.trajectories[k]
            traj.append([float(n), float(phat[i]), float(low[i]), float(high[i])])
            if len(traj) > _TRAJECTORY_MAX:
                del traj[: len(traj) - _TRAJECTORY_MAX]
            if n < self.min_replicates:
                continue
            if high[i] < self.alpha:
                self.status[k] = DECIDED_SIGNIFICANT
            elif low[i] > self.alpha:
                self.status[k] = DECIDED_NULL
            else:
                continue
            self.decided_at[k] = n
            if self.masking:
                self._mask[k] = False
            newly.append(k)
        for k in newly:
            self._post_converged(k)

    def finish(self) -> None:
        """Close the run: bank the replicates the policy avoided and post
        the final accounting event.  Idempotent."""
        if self.finished:
            return
        self.finished = True
        if self.planned_replicates > self.replicates_total:
            self.replicates_saved = self.planned_replicates - self.replicates_total
        if self.bus is not None and self.batches_folded:
            self.bus.post(self._batch_event(batch_width=0))

    # -- estimates ---------------------------------------------------------

    def pvalues(self, method: str = "plugin") -> np.ndarray:
        """Per-set running p-value estimates honoring per-set denominators.

        Decided sets under masking report the estimate frozen at their
        decision point; active sets use all replicates folded so far.
        """
        denom = np.maximum(self.denominators, 1).astype(np.float64)
        if method == "plugin":
            return self.exceed / denom
        if method == "add_one":
            return (self.exceed + 1.0) / (denom + 1.0)
        raise ValueError(f"unknown p-value method {method!r}")

    def min_pvalue(self) -> float:
        if self.replicates_total == 0:
            return 1.0
        return float(self.pvalues().min())

    def snapshot(self) -> dict:
        """JSON-safe state for ``/api/inference``, flight-recorder bundles,
        and postmortem rendering."""
        phat = self.pvalues() if self.replicates_total else np.ones(self.n_sets)
        elapsed = max(time.perf_counter() - self._started, 1e-9)
        return {
            "method": self.method,
            "alpha": self.alpha,
            "ci": self.ci,
            "min_replicates": self.min_replicates,
            "early_stop": self.policy is not None,
            "planned_replicates": self.planned_replicates,
            "replicates_total": self.replicates_total,
            "replicates_saved": self.replicates_saved,
            "replicates_per_sec": self.replicates_total / elapsed,
            "batches": self.batches_folded,
            "finished": self.finished,
            "sets_total": self.n_sets,
            "sets_converged": self.sets_converged,
            "min_pvalue": self.min_pvalue(),
            "sets": [
                {
                    "name": self.set_names[k],
                    "status": self.status[k],
                    "pvalue": float(phat[k]),
                    "ci_low": float(self._ci_low[k]),
                    "ci_high": float(self._ci_high[k]),
                    "replicates": int(self.denominators[k]),
                    "decided_at": int(self.decided_at[k]),
                    "trajectory": [list(p) for p in self.trajectories[k]],
                }
                for k in range(self.n_sets)
            ],
        }

    # -- event emission ----------------------------------------------------

    def _batch_event(self, batch_width: int) -> InferenceBatchCompleted:
        return InferenceBatchCompleted(
            method=self.method,
            batch_width=batch_width,
            replicates_total=self.replicates_total,
            planned_replicates=self.planned_replicates,
            sets_total=self.n_sets,
            sets_converged=self.sets_converged,
            replicates_saved=self.replicates_saved,
            min_pvalue=self.min_pvalue(),
            early_stop=self.policy is not None,
        )

    def _post_batch(self) -> None:
        if self.bus is None:
            return
        # fold() updates replicates_total before posting; the event's width
        # is the delta since the previous post
        width = self.replicates_total - self._posted_replicates
        self._posted_replicates = self.replicates_total
        self.bus.post(self._batch_event(batch_width=width))

    def _post_converged(self, k: int) -> None:
        if self.bus is None:
            return
        self.bus.post(SnpSetConverged(
            method=self.method,
            set_index=k,
            set_name=self.set_names[k],
            status=self.status[k],
            pvalue=float(self.pvalues()[k]),
            ci_low=float(self._ci_low[k]),
            ci_high=float(self._ci_high[k]),
            replicates=int(self.decided_at[k]),
            alpha=self.alpha,
        ))


class InferenceObservability:
    """Context-resident holder for convergence monitors.

    Always present on a :class:`~repro.engine.context.Context` (like the
    adaptive planner) so dashboards, ``/api/inference``, and
    flight-recorder bundles can report "disabled" instead of 404ing.
    Resampling runs mint monitors through :meth:`new_monitor`, which wires
    the context's bus and -- when ``inference_early_stop`` is on -- the
    configured :class:`EarlyStopPolicy`.

    On cluster backends the holder also publishes a small throughput
    summary to the fleet head (best-effort, throttled) so ``sparkscore
    cluster top`` can show replicates/sec per driver.
    """

    #: minimum seconds between fleet publications
    PUBLISH_INTERVAL = 0.5

    def __init__(self, ctx: "Context") -> None:
        self.ctx = ctx
        #: monitors minted this context, oldest first (bounded)
        self.monitors: list[ConvergenceMonitor] = []
        self._last_publish = 0.0

    def new_monitor(
        self,
        n_sets: int,
        method: str,
        planned_replicates: int,
        set_names: Sequence[str] | None = None,
    ) -> ConvergenceMonitor:
        config = self.ctx.config
        monitor = ConvergenceMonitor(
            n_sets=n_sets,
            method=method,
            planned_replicates=planned_replicates,
            set_names=set_names,
            alpha=config.inference_alpha,
            ci=config.inference_ci,
            min_replicates=config.inference_min_replicates,
            bus=self.ctx.listener_bus,
            policy=EarlyStopPolicy.from_config(config),
        )
        self.monitors.append(monitor)
        if len(self.monitors) > 8:
            del self.monitors[: len(self.monitors) - 8]
        return monitor

    def publish(self, monitor: ConvergenceMonitor, force: bool = False) -> None:
        """Push a throughput summary to the fleet head, rate-limited."""
        note = getattr(self.ctx.backend, "note_inference", None)
        if note is None:
            return
        now = time.perf_counter()
        if not force and now - self._last_publish < self.PUBLISH_INTERVAL:
            return
        self._last_publish = now
        snap = monitor.snapshot()
        try:
            note({
                "method": snap["method"],
                "replicates_total": snap["replicates_total"],
                "planned_replicates": snap["planned_replicates"],
                "replicates_per_sec": snap["replicates_per_sec"],
                "replicates_saved": snap["replicates_saved"],
                "early_stop": snap["early_stop"],
                "sets_converged": snap["sets_converged"],
                "sets_total": snap["sets_total"],
            })
        except Exception:
            pass  # fleet telemetry is advisory; never fail the run

    def snapshot(self) -> dict:
        """One JSON-safe dict answering ``/api/inference``."""
        config = self.ctx.config
        return {
            "enabled": bool(config.inference_early_stop),
            "alpha": config.inference_alpha,
            "ci": config.inference_ci,
            "min_replicates": config.inference_min_replicates,
            "runs": [m.snapshot() for m in self.monitors],
        }


__all__ = [
    "ConvergenceMonitor",
    "EarlyStopPolicy",
    "InferenceObservability",
    "binomial_interval",
    "wilson_interval",
    "clopper_pearson_interval",
    "UNDECIDED",
    "DECIDED_SIGNIFICANT",
    "DECIDED_NULL",
    "CI_METHODS",
    "DECISION_CONFIDENCE",
]
