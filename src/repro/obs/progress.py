"""Live job/stage/executor progress state and Spark-style console bars.

:class:`ProgressTracker` is a listener that folds bus events into a
structured, point-in-time snapshot of everything currently running --
jobs, stages with task completion counts, and per-executor liveness from
heartbeats.  It is the single source the live surfaces read from: the
embedded HTTP server (:mod:`repro.obs.ui`) serializes
:meth:`ProgressTracker.snapshot` at ``/api/progress``, and
:class:`ConsoleProgressListener` renders the classic Spark console bar
from the same state::

    [Stage 3:=====================>                         (12/48)]
"""

from __future__ import annotations

import sys
import threading
import time
from typing import IO

from repro.engine.listener import (
    ExecutorHeartbeat,
    ExecutorLost,
    ExecutorTimedOut,
    InferenceBatchCompleted,
    JobEnd,
    JobStart,
    Listener,
    SnpSetConverged,
    StageCompleted,
    StageSubmitted,
    TaskEnd,
    TaskStart,
)


class ProgressTracker(Listener):
    """Folds bus events into live progress state.  Thread-safe."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: job_id -> {description, state, stage_ids, submitted, wall_seconds}
        self.jobs: dict[int, dict] = {}
        #: (stage_id, attempt) -> {name, num_tasks, completed, failed, ...}
        self.stages: dict[tuple[int, int], dict] = {}
        #: executor_id -> {heartbeats, records_read, rss_bytes, ...}
        self.executors: dict[str, dict] = {}
        #: method -> {replicates_total, replicates_per_sec, sets_converged, ...}
        self.inference: dict[str, dict] = {}

    # -- jobs / stages -----------------------------------------------------

    def on_job_start(self, event: JobStart) -> None:
        with self._lock:
            self.jobs[event.job_id] = {
                "job_id": event.job_id,
                "description": event.description,
                "state": "running",
                "stage_ids": [],
                "submitted": event.time,
                "wall_seconds": None,
            }

    def on_job_end(self, event: JobEnd) -> None:
        with self._lock:
            job = self.jobs.get(event.job_id)
            if job is not None:
                job["state"] = "succeeded" if event.succeeded else "failed"
                job["wall_seconds"] = event.job.wall_seconds

    def on_stage_submitted(self, event: StageSubmitted) -> None:
        with self._lock:
            self.stages[(event.stage_id, event.attempt)] = {
                "stage_id": event.stage_id,
                "attempt": event.attempt,
                "name": event.name,
                "job_id": event.job_id,
                "num_tasks": event.num_tasks,
                "completed_tasks": 0,
                "failed_tasks": 0,
                "active_tasks": 0,
                "state": "running",
            }
            job = self.jobs.get(event.job_id)
            if job is not None and event.stage_id not in job["stage_ids"]:
                job["stage_ids"].append(event.stage_id)

    def on_stage_completed(self, event: StageCompleted) -> None:
        with self._lock:
            stage = self.stages.get((event.stage.stage_id, event.stage.attempt))
            if stage is not None:
                stage["state"] = "failed" if event.failed else "complete"
                stage["active_tasks"] = 0

    def on_task_start(self, event: TaskStart) -> None:
        with self._lock:
            stage = self._latest_stage(event.stage_id)
            if stage is not None:
                stage["active_tasks"] += 1

    def on_task_end(self, event: TaskEnd) -> None:
        record = event.record
        with self._lock:
            stage = self._latest_stage(record.stage_id)
            if stage is not None:
                stage["active_tasks"] = max(0, stage["active_tasks"] - 1)
                if record.succeeded:
                    stage["completed_tasks"] += 1
                else:
                    stage["failed_tasks"] += 1

    def _latest_stage(self, stage_id: int) -> dict | None:
        """Newest attempt's entry for a stage id (insertion order wins)."""
        found = None
        for (sid, _), stage in self.stages.items():
            if sid == stage_id:
                found = stage
        return found

    # -- executors ---------------------------------------------------------

    def on_executor_heartbeat(self, event: ExecutorHeartbeat) -> None:
        with self._lock:
            info = self.executors.setdefault(event.executor_id, {
                "executor_id": event.executor_id,
                "heartbeats": 0,
                "state": "alive",
            })
            info["heartbeats"] += 1
            info["inflight"] = len(event.inflight)
            info["records_read"] = event.records_read
            info["rss_bytes"] = event.rss_bytes
            info["worker_pid"] = event.worker_pid
            info["last_heartbeat"] = event.time

    def on_executor_timed_out(self, event: ExecutorTimedOut) -> None:
        with self._lock:
            info = self.executors.setdefault(event.executor_id, {
                "executor_id": event.executor_id, "heartbeats": 0,
            })
            info["state"] = "timed_out"

    def on_executor_lost(self, event: ExecutorLost) -> None:
        with self._lock:
            info = self.executors.setdefault(event.executor_id, {
                "executor_id": event.executor_id, "heartbeats": 0,
            })
            info["state"] = "lost"

    # -- inference convergence ---------------------------------------------

    def on_inference_batch_completed(self, event: InferenceBatchCompleted) -> None:
        with self._lock:
            info = self.inference.setdefault(event.method, {
                "method": event.method,
                "started": event.time,
                "sets_converged": 0,
            })
            info["replicates_total"] = event.replicates_total
            info["planned_replicates"] = event.planned_replicates
            info["sets_total"] = event.sets_total
            info["sets_converged"] = event.sets_converged
            info["replicates_saved"] = event.replicates_saved
            info["early_stop"] = event.early_stop
            elapsed = max(event.time - info["started"], 1e-9)
            info["replicates_per_sec"] = event.replicates_total / elapsed

    def on_snp_set_converged(self, event: SnpSetConverged) -> None:
        with self._lock:
            info = self.inference.setdefault(event.method, {
                "method": event.method,
                "started": event.time,
                "sets_converged": 0,
            })
            decisions = info.setdefault("recent_decisions", [])
            decisions.append({
                "set_name": event.set_name,
                "status": event.status,
                "pvalue": event.pvalue,
                "replicates": event.replicates,
            })
            del decisions[:-10]

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable point-in-time copy of all live state."""
        with self._lock:
            return {
                "jobs": [dict(j) for j in self.jobs.values()],
                "stages": [dict(s) for s in self.stages.values()],
                "executors": [dict(e) for e in self.executors.values()],
                "inference": [dict(i) for i in self.inference.values()],
            }

    def active_stages(self) -> list[dict]:
        with self._lock:
            return [dict(s) for s in self.stages.values() if s["state"] == "running"]


class ConsoleProgressListener(Listener):
    """Renders running stages as Spark-style console bars.

    One carriage-return-redrawn line covering every active stage, updated
    on task events (rate-limited); the line clears when all stages finish,
    exactly like ``spark.ui.showConsoleProgress``.
    """

    def __init__(
        self,
        tracker: ProgressTracker,
        stream: IO[str] | None = None,
        width: int = 50,
        min_interval: float = 0.1,
    ) -> None:
        self.tracker = tracker
        self.stream = stream if stream is not None else sys.stderr
        self.width = width
        self.min_interval = min_interval
        self._lock = threading.Lock()
        self._last_render = 0.0
        self._last_len = 0

    def on_task_start(self, event: TaskStart) -> None:
        self._render()

    def on_task_end(self, event: TaskEnd) -> None:
        self._render()

    def on_stage_completed(self, event: StageCompleted) -> None:
        self._render(force=True)

    def on_job_end(self, event: JobEnd) -> None:
        self._clear()

    def close(self) -> None:
        self._clear()

    def _bar(self, stage: dict) -> str:
        done, total = stage["completed_tasks"], max(1, stage["num_tasks"])
        filled = int(self.width * done / total)
        bar = "=" * filled
        if filled < self.width:
            bar += ">" + " " * (self.width - filled - 1)
        return f"[Stage {stage['stage_id']}:{bar}({done}/{total})]"

    def _inference_suffix(self) -> str:
        """Replicate throughput trailer, e.g. ``[mc 1024r @ 3456r/s, 5/8 sets]``."""
        parts = []
        with self.tracker._lock:
            runs = [dict(i) for i in self.tracker.inference.values()]
        for info in runs:
            if "replicates_total" not in info:
                continue
            label = {"monte_carlo": "mc", "permutation": "perm"}.get(
                info["method"], info["method"]
            )
            parts.append(
                f"[{label} {info['replicates_total']}r @ "
                f"{info.get('replicates_per_sec', 0.0):.0f}r/s, "
                f"{info.get('sets_converged', 0)}/{info.get('sets_total', '?')} sets]"
            )
        return "".join(parts)

    def _render(self, force: bool = False) -> None:
        with self._lock:
            now = time.perf_counter()
            if not force and now - self._last_render < self.min_interval:
                return
            self._last_render = now
            active = self.tracker.active_stages()
            if not active:
                self._clear_locked()
                return
            line = "".join(self._bar(s) for s in active) + self._inference_suffix()
            pad = " " * max(0, self._last_len - len(line))
            try:
                self.stream.write("\r" + line + pad)
                self.stream.flush()
            except (ValueError, OSError):  # closed stream
                return
            self._last_len = len(line)

    def _clear(self) -> None:
        with self._lock:
            self._clear_locked()

    def _clear_locked(self) -> None:
        if self._last_len:
            try:
                self.stream.write("\r" + " " * self._last_len + "\r")
                self.stream.flush()
            except (ValueError, OSError):
                pass
            self._last_len = 0


__all__ = ["ProgressTracker", "ConsoleProgressListener"]
