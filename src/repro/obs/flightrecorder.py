"""Failure flight recorder: the engine's black box.

A :class:`FlightRecorder` rides the listener bus keeping a bounded,
time-windowed ring of recent events.  The moment a job fails (a
:class:`~repro.engine.listener.JobEnd` with ``succeeded=False``) it dumps
everything an operator needs to reconstruct the crash -- without grepping
four different logs -- into one JSON **post-mortem bundle**:

- the last N seconds of bus events (task starts/ends, stage transitions,
  heartbeats, alerts) as compact dicts;
- the process log-bus ring (correlation ids intact, so records join back
  to the failing task);
- the metric series window from the TSDB, when a sampler is running;
- alert history and currently-firing alerts, when the alert engine is on;
- spans still open at failure time (the work that never finished);
- executor states (alive, suspended, task counts) and the effective
  engine config;
- on persistent fleets, the cluster-resident fleet snapshot (executor
  lifecycle history, warm-cache stats, queue depths) under ``fleet``;
- the adaptive planner's decision ledger (plan rewrites, serializer
  picks, speculation outcomes) under ``adaptive``;
- the failed job's full stage/task tree, in event-log v5 ``job`` shape so
  offline tooling (advisor, span reconstruction) reuses the same readers.

``sparkscore postmortem <bundle>`` renders the forensic timeline: the
failing task, its correlated log lines, the alert history around the
crash, and the PR-5 advisor's recommendations recomputed from the bundle.

One bundle per failed job (monotonic sequence in the filename), written
synchronously from the bus thread -- by the time the driver's exception
propagates, the bundle is on disk.  A recorder failure never fails the
job: the bus isolates listener errors, and :meth:`dump` additionally
catches its own I/O problems.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import TYPE_CHECKING, Any

from repro.engine.listener import (
    EngineEvent,
    JobEnd,
    Listener,
    StageCompleted,
    TaskEnd,
)
from repro.obs.logging import LOG_BUS, get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.context import Context

log = get_logger("repro.obs.flightrecorder")

BUNDLE_KIND = "sparkscore-postmortem"
BUNDLE_VERSION = 1


def _event_to_dict(event: EngineEvent) -> dict:
    """Compact, JSON-safe rendering of any bus event for the ring.

    TaskEnd/StageCompleted/JobEnd carry heavyweight metrics objects; they
    are summarized rather than serialized in full (the failed job's
    complete tree rides separately in the bundle's ``job`` section).
    """
    out: dict[str, Any] = {"event": type(event).__name__, "time": event.time}
    if isinstance(event, TaskEnd):
        rec = event.record
        out.update(
            stage_id=rec.stage_id,
            partition=rec.partition,
            attempt=rec.attempt,
            executor_id=rec.executor_id,
            duration_seconds=rec.duration_seconds,
            succeeded=rec.succeeded,
            error=rec.error,
        )
        return out
    if isinstance(event, StageCompleted):
        out.update(
            stage_id=event.stage.stage_id,
            attempt=event.stage.attempt,
            name=event.stage.name,
            job_id=event.job_id,
            failed=event.failed,
            wall_seconds=event.stage.wall_seconds,
        )
        return out
    if isinstance(event, JobEnd):
        out.update(
            job_id=event.job_id,
            succeeded=event.succeeded,
            wall_seconds=event.job.wall_seconds,
            num_task_failures=event.job.num_task_failures,
        )
        return out
    for f in dataclasses.fields(event):
        if f.name == "time":
            continue
        value = getattr(event, f.name)
        if isinstance(value, (str, int, float, bool, type(None))):
            out[f.name] = value
        elif isinstance(value, dict):
            out[f.name] = {str(k): v for k, v in value.items()}
        elif isinstance(value, (list, tuple)):
            out[f.name] = [list(v) if isinstance(v, (list, tuple)) else v for v in value]
        else:
            out[f.name] = repr(value)
    return out


def _failing_task(job_dict: dict) -> dict | None:
    """The last failed task attempt in a bundle's job tree, if any."""
    failing = None
    for stage in job_dict.get("stages", []):
        for task in stage.get("tasks", []):
            if not task.get("succeeded", True):
                failing = task
    return failing


class FlightRecorder(Listener):
    """Bus listener that writes post-mortem bundles on job failure."""

    def __init__(
        self,
        out_dir: str,
        context: "Context | None" = None,
        window: float = 30.0,
        max_events: int = 4096,
        max_logs: int = 512,
    ) -> None:
        self.out_dir = out_dir
        self.context = context
        self.window = window
        self.max_events = max_events
        self.max_logs = max_logs
        self._events: list[dict] = []
        self._seq = 0
        #: paths of bundles written so far
        self.bundles: list[str] = []
        #: JobEnd failures observed (drives the stop()-time safety dump)
        self.failures_seen = 0

    # -- event ring -------------------------------------------------------

    def on_event(self, event: EngineEvent) -> None:
        self._events.append(_event_to_dict(event))
        if len(self._events) > self.max_events:
            del self._events[: len(self._events) - self.max_events]

    def events_tail(self, now: float) -> list[dict]:
        start = now - self.window
        return [e for e in self._events if e.get("time", 0.0) >= start]

    # -- trigger ----------------------------------------------------------

    def on_job_end(self, event: JobEnd) -> None:
        if event.succeeded:
            return
        self.failures_seen += 1
        self.dump(reason="job_failure", job=event.job, now=event.time)

    def dump_on_stop(self) -> str | None:
        """Safety net for ``Context.stop()`` after an error: if a failure
        was observed but no bundle landed (an earlier dump raised), write
        one now from whatever state remains."""
        if self.failures_seen and not self.bundles:
            return self.dump(reason="stop_after_error")
        return None

    def dump(self, reason: str, job=None, now: float | None = None) -> str | None:
        """Write one bundle; returns its path (None when writing failed)."""
        try:
            return self._dump(reason, job, now)
        except Exception as exc:  # never let forensics fail the engine
            log.error(
                "flight recorder failed to write bundle",
                reason=reason,
                error=f"{type(exc).__name__}: {exc}",
            )
            return None

    def _dump(self, reason: str, job, now: float | None) -> str:
        from repro.engine.eventlog import FORMAT_VERSION, _job_to_dict

        if now is None:
            now = self._events[-1]["time"] if self._events else 0.0
        ctx = self.context
        bundle: dict[str, Any] = {
            "kind": BUNDLE_KIND,
            "bundle_version": BUNDLE_VERSION,
            "eventlog_version": FORMAT_VERSION,
            "time": now,
            "window": self.window,
            "reason": reason,
        }
        if job is not None:
            job_dict = _job_to_dict(job)
            bundle["job"] = job_dict
            failing = _failing_task(job_dict)
            if failing is not None:
                bundle["failing_task"] = {
                    "stage_id": failing["stage_id"],
                    "partition": failing["partition"],
                    "attempt": failing["attempt"],
                    "executor_id": failing["executor_id"],
                    "error": failing["error"],
                }
                bundle["error"] = failing["error"]
        bundle["events"] = self.events_tail(now)
        bundle["logs"] = [
            rec.to_dict() for rec in LOG_BUS.records(limit=self.max_logs)
        ]
        if ctx is not None:
            bundle["config"] = dataclasses.asdict(ctx.config)
            bundle["executors"] = [
                {
                    "executor_id": ex.executor_id,
                    "host": ex.host,
                    "alive": ex.alive,
                    "heartbeats_suspended": ex.heartbeats_suspended,
                    "tasks_run": ex.tasks_run,
                    "tasks_failed": ex.tasks_failed,
                }
                for ex in ctx.executors
            ]
            if ctx.timeseries is not None:
                bundle["series"] = ctx.timeseries.dump(self.window, now)
            if ctx.alerts is not None:
                snap = ctx.alerts.snapshot()
                bundle["alerts"] = {
                    "history": snap["history"],
                    "firing": ctx.alerts.firing(),
                }
            if ctx._tracer is not None:
                bundle["open_spans"] = [
                    s.to_dict() for s in ctx._tracer.open_spans()
                ]
            planner = getattr(ctx, "adaptive", None)
            if planner is not None:
                bundle["adaptive"] = planner.snapshot()
            inference = getattr(ctx, "inference", None)
            if inference is not None:
                bundle["inference"] = inference.snapshot()
            # persistent fleets contribute the cluster-resident snapshot
            # (executor lifecycle history, warm-cache economics, queue
            # depths) -- the part of the story that predates this driver
            fleet_fn = getattr(ctx.backend, "fleet_snapshot", None)
            if fleet_fn is not None:
                try:
                    bundle["fleet"] = fleet_fn(self.window)
                except Exception:
                    pass  # a dead head must not sink the post-mortem
        os.makedirs(self.out_dir, exist_ok=True)
        self._seq += 1
        job_id = job.job_id if job is not None else "ctx"
        path = os.path.join(
            self.out_dir, f"postmortem-job{job_id}-{self._seq:03d}.json"
        )
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(bundle, fh, separators=(",", ":"))
            fh.write("\n")
        self.bundles.append(path)
        log.warning(
            "flight recorder wrote post-mortem bundle",
            path=path,
            reason=reason,
            events=len(bundle["events"]),
        )
        return path


def load_bundle(path: str) -> dict:
    """Load and validate one post-mortem bundle."""
    with open(path, encoding="utf-8") as fh:
        bundle = json.load(fh)
    if bundle.get("kind") != BUNDLE_KIND:
        raise ValueError(f"{path} is not a {BUNDLE_KIND} bundle")
    return bundle


__all__ = [
    "FlightRecorder",
    "load_bundle",
    "BUNDLE_KIND",
    "BUNDLE_VERSION",
]
