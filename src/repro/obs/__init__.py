"""Observability: logging, tracing, metrics, diagnostics, and the advisor.

Five coupled pieces, the analogue of Spark's web UI + log4j layout +
metrics system + history server, all fed by the engine's listener bus
(:mod:`repro.engine.listener`):

- :mod:`repro.obs.logging` -- structured JSONL logging with automatic
  task correlation ids, a ring-buffered :class:`LogBus`, and worker-side
  capture that ships records home with task results;
- :mod:`repro.obs.registry` -- process-wide counters / gauges / histograms
  with Prometheus-style text exposition, plus a bus bridge that keeps
  engine-level series (tasks, shuffle bytes, cache traffic) up to date;
- :mod:`repro.obs.spans` -- hierarchical spans (job -> stage -> task
  attempt) exportable as JSONL or Chrome ``trace_event`` JSON;
- :mod:`repro.obs.history` -- offline analysis of event logs: stage
  tables, straggler percentiles, cache hit rates, and DAG critical-path
  analysis (surfaced by ``sparkscore history``);
- :mod:`repro.obs.diagnostics` / :mod:`repro.obs.advisor` -- skew,
  straggler, and cache-pressure detection over the recorded telemetry,
  and the rule-based recommendation engine behind ``sparkscore doctor``;
- :mod:`repro.obs.timeseries` -- the in-memory ring-buffer TSDB and the
  driver-side sampler thread that snapshots the registry into it;
- :mod:`repro.obs.alerts` -- declarative threshold/rate/absence rules
  over the TSDB with a pending -> firing -> resolved state machine;
- :mod:`repro.obs.flightrecorder` -- the failure black box behind
  ``sparkscore postmortem``.
"""

from repro.obs.advisor import Recommendation, diagnose, render_recommendations
from repro.obs.alerts import (
    AlertManager,
    AlertRule,
    ConsoleAlertSink,
    JsonlAlertSink,
    builtin_rules,
    load_rules,
)
from repro.obs.diagnostics import (
    DiagnosticsListener,
    analyze_cache_pressure,
    detect_skew,
    detect_stragglers,
    gini,
)
from repro.obs.logging import (
    LOG_BUS,
    JsonlLogSink,
    LogBus,
    LogRecord,
    capture_logs,
    get_logger,
    log_context,
)
from repro.obs.flightrecorder import FlightRecorder, load_bundle
from repro.obs.registry import REGISTRY, Counter, Gauge, Histogram, Registry
from repro.obs.spans import Span, TracingListener, spans_from_jobs, to_chrome_trace
from repro.obs.timeseries import MetricsSampler, Series, TimeSeriesStore

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "Span",
    "TracingListener",
    "spans_from_jobs",
    "to_chrome_trace",
    "LOG_BUS",
    "LogBus",
    "LogRecord",
    "JsonlLogSink",
    "get_logger",
    "log_context",
    "capture_logs",
    "DiagnosticsListener",
    "analyze_cache_pressure",
    "detect_skew",
    "detect_stragglers",
    "gini",
    "Recommendation",
    "diagnose",
    "render_recommendations",
    "Series",
    "TimeSeriesStore",
    "MetricsSampler",
    "AlertRule",
    "AlertManager",
    "ConsoleAlertSink",
    "JsonlAlertSink",
    "builtin_rules",
    "load_rules",
    "FlightRecorder",
    "load_bundle",
]
