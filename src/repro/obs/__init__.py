"""Observability: structured tracing, a metrics registry, and history analysis.

Three coupled pieces, the analogue of Spark's web UI + metrics system +
history server, all fed by the engine's listener bus
(:mod:`repro.engine.listener`):

- :mod:`repro.obs.registry` -- process-wide counters / gauges / histograms
  with Prometheus-style text exposition, plus a bus bridge that keeps
  engine-level series (tasks, shuffle bytes, cache traffic) up to date;
- :mod:`repro.obs.spans` -- hierarchical spans (job -> stage -> task
  attempt) exportable as JSONL or Chrome ``trace_event`` JSON;
- :mod:`repro.obs.history` -- offline analysis of event logs: stage
  tables, straggler percentiles, cache hit rates, and DAG critical-path
  analysis (surfaced by ``sparkscore history``).
"""

from repro.obs.registry import REGISTRY, Counter, Gauge, Histogram, Registry
from repro.obs.spans import Span, TracingListener, spans_from_jobs, to_chrome_trace

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "Span",
    "TracingListener",
    "spans_from_jobs",
    "to_chrome_trace",
]
