"""Cluster-resident fleet observability: metrics that outlive drivers.

Everything PRs 1--6 built (spans, TSDB, alerts, dashboard) is scoped to
one :class:`~repro.engine.context.Context` and evaporates at ``stop()``.
The persistent cluster (PR 7) outlives every driver, so its telemetry
must too: :class:`FleetStats` lives inside the
:class:`~repro.engine.cluster_backend.ClusterManager`, folds worker
heartbeats and task completions into a persistent
:class:`~repro.obs.timeseries.TimeSeriesStore` keyed by executor, and
answers snapshot queries from any driver -- including drivers started
long after the jobs whose statistics it is reporting.

Fed from three places in the manager:

- the dispatch loop's HEARTBEAT branch (per-executor RSS, in-flight
  depth, records read);
- the RESULT/TASK_ERROR branch (per-driver task throughput, keyed by the
  submitting driver's trace id);
- a periodic :meth:`sample` call from the dispatch loop (slot occupancy,
  dispatch-queue depth, transport dedup counters, frame bytes in/out).

Series use ``fleet_``-prefixed names and carry ``executor_id`` (and
``driver`` where it applies) labels, so a multi-driver fleet's exposition
never collides with any single Context's registry families.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

from repro.obs.timeseries import TimeSeriesStore

#: executor lifecycle transitions kept for post-mortems (bounded ring)
_LIFECYCLE_MAX = 256


class FleetStats:
    """Fleet-wide aggregator resident in the cluster manager.  Thread-safe.

    All counters are cumulative since fleet start; the embedded
    :class:`TimeSeriesStore` holds the recent per-executor history (ring
    buffers with downsampling, so memory stays bounded for the life of
    the fleet).
    """

    def __init__(
        self,
        raw_capacity: int = 512,
        downsample_factor: int = 8,
    ) -> None:
        self._lock = threading.Lock()
        self.started_wall = time.time()
        self._started_mono = time.perf_counter()
        self.store = TimeSeriesStore(
            raw_capacity=raw_capacity, downsample_factor=downsample_factor
        )
        #: driver attaches served since fleet start
        self.jobs_served = 0
        self.tasks_completed = 0
        self.task_errors = 0
        #: driver label (trace id / connection label) -> completed tasks
        self.tasks_by_driver: dict[str, int] = {}
        #: driver label -> latest inference-convergence summary (replicates
        #: done/planned, throughput, sets converged) from INFERENCE frames
        self.inference_by_driver: dict[str, dict] = {}
        self.heartbeats_received = 0
        self.frame_bytes_in = 0
        self.frame_bytes_out = 0
        #: distinct driver labels ever seen
        self._drivers_seen: set[str] = set()
        #: (wall time, executor_id, state) transitions, oldest first
        self._lifecycle: deque = deque(maxlen=_LIFECYCLE_MAX)
        self._current_driver = ""

    # -- uptime ------------------------------------------------------------

    @property
    def uptime_seconds(self) -> float:
        return time.perf_counter() - self._started_mono

    # -- fold points (called by the cluster manager) -----------------------

    def note_attach(self, driver: str | None) -> None:
        with self._lock:
            self.jobs_served += 1
            self._current_driver = driver or ""
            if driver:
                self._drivers_seen.add(driver)

    def note_detach(self) -> None:
        with self._lock:
            self._current_driver = ""

    def current_driver(self) -> str:
        with self._lock:
            return self._current_driver

    def note_lifecycle(self, executor_id: str, state: str) -> None:
        with self._lock:
            self._lifecycle.append((time.time(), executor_id, state))

    def note_task_done(
        self, executor_id: str, driver: str | None, ok: bool = True
    ) -> None:
        label = driver or "unattributed"
        with self._lock:
            self.tasks_completed += 1
            if not ok:
                self.task_errors += 1
            self.tasks_by_driver[label] = self.tasks_by_driver.get(label, 0) + 1
            self._drivers_seen.add(label)
        self.store.record(
            "fleet_tasks_total",
            self.tasks_by_driver[label],
            labels={"executor_id": executor_id, "driver": label},
            kind="counter",
        )

    def note_inference(self, driver: str | None, info: dict) -> None:
        """Fold one inference-convergence summary from a driver."""
        if not isinstance(info, dict):
            return
        label = driver or "unattributed"
        with self._lock:
            self.inference_by_driver[label] = dict(info)
            self._drivers_seen.add(label)
        self.store.record(
            "fleet_replicates_total",
            float(info.get("replicates_total", 0)),
            labels={"driver": label},
            kind="counter",
        )

    def note_heartbeat(self, record: Any) -> None:
        """Fold one :class:`~repro.engine.heartbeat.HeartbeatRecord`."""
        with self._lock:
            self.heartbeats_received += 1
        labels = {"executor_id": record.executor_id}
        self.store.record(
            "fleet_executor_rss_bytes", float(record.rss_bytes), labels=labels
        )
        self.store.record(
            "fleet_executor_inflight", float(len(record.inflight)), labels=labels
        )
        self.store.record(
            "fleet_records_read",
            float(record.records_read),
            labels=labels,
            kind="counter",
        )

    def note_frame_bytes(self, bytes_in: int = 0, bytes_out: int = 0) -> None:
        with self._lock:
            self.frame_bytes_in += bytes_in
            self.frame_bytes_out += bytes_out

    # -- periodic sampling -------------------------------------------------

    def sample(self, manager: Any) -> None:
        """Record gauges the fold points cannot see (called from the
        manager's dispatch loop, so worker state reads race-free)."""
        per_exec: dict[str, dict[str, float]] = {}
        for handle in manager.workers:
            info = per_exec.setdefault(
                handle.executor_id, {"slots": 0.0, "busy": 0.0, "queued": 0.0}
            )
            info["slots"] += 1
            if handle.alive and handle.inflight:
                info["busy"] += 1
            info["queued"] += len(handle.inflight)
        for eid, info in per_exec.items():
            labels = {"executor_id": eid}
            occupancy = info["busy"] / info["slots"] if info["slots"] else 0.0
            self.store.record("fleet_slot_occupancy", occupancy, labels=labels)
            self.store.record("fleet_queue_depth", info["queued"], labels=labels)
        transport = getattr(manager, "transport", None)
        if transport is not None:
            self.store.record(
                "fleet_transport_bytes_published",
                float(getattr(transport, "bytes_published", 0)),
                kind="counter",
            )
            self.store.record(
                "fleet_transport_dedup_hits",
                float(getattr(transport, "dedup_hits", 0)),
                kind="counter",
            )
        with self._lock:
            bytes_in, bytes_out = self.frame_bytes_in, self.frame_bytes_out
        self.store.record("fleet_frame_bytes_in", float(bytes_in), kind="counter")
        self.store.record("fleet_frame_bytes_out", float(bytes_out), kind="counter")

    # -- queries -----------------------------------------------------------

    def warm_summary(self, manager: Any) -> dict:
        """Warm-cache economics: what persistence actually saved."""
        transport = getattr(manager, "transport", None)
        published = int(getattr(transport, "bytes_published", 0) or 0)
        dedup_hits = int(getattr(transport, "dedup_hits", 0) or 0)
        saved = int(getattr(transport, "dedup_bytes_saved", 0) or 0)
        # hit rate over all dedup-eligible publications: hits / (hits + stores)
        stores = len(getattr(transport, "_by_hash", {}) or {})
        total = dedup_hits + stores
        return {
            "bytes_published": published,
            "dedup_hits": dedup_hits,
            "warm_bytes_saved": saved,
            "dedup_hit_rate": (dedup_hits / total) if total else 0.0,
            "binaries_cached": len(getattr(manager, "_shipped", ()) or ()),
        }

    def snapshot(self, manager: Any = None, window: float | None = None) -> dict:
        """One JSON-safe dict answering ``/api/fleet`` and FLEET frames."""
        with self._lock:
            out: dict[str, Any] = {
                "started_wall": self.started_wall,
                "uptime_seconds": time.perf_counter() - self._started_mono,
                "jobs_served": self.jobs_served,
                "tasks_completed": self.tasks_completed,
                "task_errors": self.task_errors,
                "tasks_by_driver": dict(self.tasks_by_driver),
                "inference_by_driver": {
                    d: dict(i) for d, i in self.inference_by_driver.items()
                },
                "drivers_seen": sorted(self._drivers_seen),
                "heartbeats_received": self.heartbeats_received,
                "frame_bytes_in": self.frame_bytes_in,
                "frame_bytes_out": self.frame_bytes_out,
                "lifecycle": [list(item) for item in self._lifecycle],
            }
        if manager is not None:
            out["executors"] = manager.executor_info()
            out["warm"] = self.warm_summary(manager)
        out["series"] = self.store.dump(window)
        out["series_names"] = self.store.names()
        return out


def render_fleet_families(
    snapshot: dict, skip: "frozenset[str] | set[str]" = frozenset()
) -> list[str]:
    """OpenMetrics lines (TYPE + latest sample per series) for a fleet
    snapshot, for appending to the driver's ``/metrics`` exposition.

    ``skip`` holds family names the process registry already exposes:
    emitting a second HELP/TYPE block for the same name is a scrape
    error, so on a multi-driver fleet the Context's families always win
    and colliding fleet families are dropped rather than duplicated.
    """
    from repro.obs.registry import _escape_label_value, _format_value

    by_name: dict[str, list[dict]] = {}
    for series in snapshot.get("series", ()):
        name = series.get("name", "")
        if not name or name in skip or not series.get("samples"):
            continue
        by_name.setdefault(name, []).append(series)
    lines: list[str] = []
    for name in sorted(by_name):
        kind = by_name[name][0].get("kind", "gauge")
        lines.append(f"# HELP {name} fleet-resident series (cluster manager)")
        lines.append(f"# TYPE {name} {kind}")
        for series in by_name[name]:
            labels = series.get("labels", {}) or {}
            body = ",".join(
                f'{k}="{_escape_label_value(v)}"' for k, v in sorted(labels.items())
            )
            label_str = "{" + body + "}" if body else ""
            value = float(series["samples"][-1][1])
            lines.append(f"{name}{label_str} {_format_value(value)}")
    return lines


__all__ = ["FleetStats", "render_fleet_families"]
