"""In-memory ring-buffer TSDB and the driver-side metrics sampler.

The missing time dimension of the observability plane: the metrics
registry (:mod:`repro.obs.registry`) answers *what is the value now*,
this module answers *how did it get there*.  Three pieces:

- :class:`Series` -- one metric's history as two retention tiers: a
  full-resolution **raw ring** (newest ``raw_capacity`` samples) and a
  **downsampled ring** behind it.  Samples evicted from the raw ring are
  not dropped: every ``downsample_factor`` of them folds into one
  min/max/mean :class:`Bin`, so old history degrades gracefully in
  resolution instead of disappearing.  Memory is strictly bounded:
  ``raw_capacity`` points + ``downsampled_capacity`` bins per series.
- :class:`TimeSeriesStore` -- the keyed collection
  (``(metric name, label set) -> Series``) with the query API: range
  scans (:meth:`~TimeSeriesStore.query`), counter rates over windows,
  and percentiles over windows.  :meth:`~TimeSeriesStore.observe_registry`
  snapshots every instrument of a metrics registry in one pass
  (histograms contribute their ``_count`` / ``_sum`` series).
- :class:`MetricsSampler` -- the driver thread that clocks the store: at
  a configurable interval it snapshots the process registry, hands the
  *changed* samples to tick sinks (the event log's v5 ``series`` side
  channel), and runs tick hooks (the alert engine evaluates its rules
  here).  ``Context(metrics_interval=...)`` / ``--metrics-interval``
  own its lifecycle; :meth:`MetricsSampler.stop` joins the thread with
  a bounded timeout so contexts never leak it across tests.

Timestamps are monotonic (:func:`time.perf_counter`), consistent with
spans, log records, and bus events, so series interleave correctly with
every other signal from the same run.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.registry import Registry

LabelKey = tuple  # tuple[tuple[str, str], ...]


def label_key(labels: Mapping[str, str] | Iterable[tuple[str, str]] | None) -> LabelKey:
    """Canonical hashable form of a label set (sorted (k, v) pairs)."""
    if labels is None:
        return ()
    if isinstance(labels, Mapping):
        items = labels.items()
    else:
        items = labels
    return tuple(sorted((str(k), str(v)) for k, v in items))


@dataclass
class Bin:
    """One downsampled bucket: the aggregate of consecutive raw samples."""

    start: float
    end: float
    min: float
    max: float
    sum: float
    count: int

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "count": self.count,
        }


class Series:
    """One metric's bounded history; thread-safety lives in the store."""

    __slots__ = (
        "name", "labels", "kind", "raw_capacity", "downsample_factor",
        "raw", "downsampled", "_pending", "last_change", "samples_recorded",
    )

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        kind: str = "gauge",
        raw_capacity: int = 512,
        downsample_factor: int = 8,
        downsampled_capacity: int = 512,
    ) -> None:
        self.name = name
        self.labels = labels
        self.kind = kind
        self.raw_capacity = raw_capacity
        self.downsample_factor = downsample_factor
        #: newest samples at full resolution, as (time, value)
        self.raw: deque[tuple[float, float]] = deque()
        #: older history, one Bin per ``downsample_factor`` evicted samples
        self.downsampled: deque[Bin] = deque(maxlen=downsampled_capacity)
        self._pending: Bin | None = None
        #: time of the last sample whose value differed from its predecessor
        self.last_change: float | None = None
        self.samples_recorded = 0

    def append(self, t: float, value: float) -> bool:
        """Record one sample; returns True when the value changed."""
        changed = not self.raw or self.raw[-1][1] != value
        if changed:
            self.last_change = t
        self.raw.append((t, float(value)))
        self.samples_recorded += 1
        while len(self.raw) > self.raw_capacity:
            old_t, old_v = self.raw.popleft()
            self._fold(old_t, old_v)
        return changed

    def _fold(self, t: float, value: float) -> None:
        pending = self._pending
        if pending is None:
            self._pending = Bin(t, t, value, value, value, 1)
            return
        pending.end = t
        pending.min = min(pending.min, value)
        pending.max = max(pending.max, value)
        pending.sum += value
        pending.count += 1
        if pending.count >= self.downsample_factor:
            self.downsampled.append(pending)
            self._pending = None

    # -- queries ----------------------------------------------------------

    def latest(self) -> tuple[float, float] | None:
        return self.raw[-1] if self.raw else None

    def samples(
        self, start: float = -math.inf, end: float = math.inf
    ) -> list[tuple[float, float]]:
        """Range scan: downsampled bins (as their mean, at bin midpoint)
        followed by raw samples, both clipped to ``[start, end]``."""
        out: list[tuple[float, float]] = []
        for b in self.downsampled:
            mid = (b.start + b.end) / 2
            if start <= mid <= end:
                out.append((mid, b.mean))
        pending = self._pending
        if pending is not None:
            mid = (pending.start + pending.end) / 2
            if start <= mid <= end:
                out.append((mid, pending.mean))
        out.extend((t, v) for t, v in self.raw if start <= t <= end)
        return out

    def rate(self, window: float, now: float | None = None) -> float:
        """Per-second increase over the trailing window (counter ``rate()``).

        Sums positive deltas only, so a counter reset (process restart)
        reads as a pause, not a negative rate.
        """
        if now is None:
            latest = self.latest()
            now = latest[0] if latest else 0.0
        pts = self.samples(now - window, now)
        if len(pts) < 2:
            return 0.0
        increase = sum(
            max(0.0, b[1] - a[1]) for a, b in zip(pts, pts[1:])
        )
        elapsed = pts[-1][0] - pts[0][0]
        return increase / elapsed if elapsed > 0 else 0.0

    def percentile(self, q: float, window: float, now: float | None = None) -> float:
        """Linear-interpolated percentile of raw values in the window."""
        if now is None:
            latest = self.latest()
            now = latest[0] if latest else 0.0
        values = sorted(v for _, v in self.samples(now - window, now))
        if not values:
            return 0.0
        if len(values) == 1:
            return values[0]
        pos = min(max(q, 0.0), 1.0) * (len(values) - 1)
        lo = int(pos)
        frac = pos - lo
        if lo + 1 >= len(values):
            return values[-1]
        return values[lo] * (1 - frac) + values[lo + 1] * frac

    def window_stats(self, window: float, now: float | None = None) -> dict:
        """min/max/mean/first/last over the trailing window."""
        if now is None:
            latest = self.latest()
            now = latest[0] if latest else 0.0
        pts = self.samples(now - window, now)
        if not pts:
            return {"count": 0, "min": 0.0, "max": 0.0, "mean": 0.0,
                    "first": 0.0, "last": 0.0}
        values = [v for _, v in pts]
        return {
            "count": len(values),
            "min": min(values),
            "max": max(values),
            "mean": sum(values) / len(values),
            "first": values[0],
            "last": values[-1],
        }

    def seconds_since_change(self, now: float) -> float:
        """Age of the newest value *change* (absence-rule input)."""
        if self.last_change is None:
            return math.inf
        return max(0.0, now - self.last_change)

    def to_dict(self, start: float = -math.inf, end: float = math.inf) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "kind": self.kind,
            "samples": [[t, v] for t, v in self.samples(start, end)],
        }


class TimeSeriesStore:
    """Thread-safe collection of :class:`Series`, keyed by (name, labels)."""

    def __init__(
        self,
        raw_capacity: int = 512,
        downsample_factor: int = 8,
        downsampled_capacity: int = 512,
        max_series: int = 4096,
    ) -> None:
        self.raw_capacity = raw_capacity
        self.downsample_factor = downsample_factor
        self.downsampled_capacity = downsampled_capacity
        self.max_series = max_series
        self._lock = threading.Lock()
        self._series: dict[tuple[str, LabelKey], Series] = {}
        #: series creations refused by the max_series cap (cardinality guard)
        self.series_dropped = 0

    def series(
        self,
        name: str,
        labels: Mapping[str, str] | LabelKey | None = None,
        kind: str = "gauge",
    ) -> Series | None:
        """Get-or-create one series; None when the cardinality cap is hit."""
        key = (name, label_key(labels))
        with self._lock:
            s = self._series.get(key)
            if s is None:
                if len(self._series) >= self.max_series:
                    self.series_dropped += 1
                    return None
                s = self._series[key] = Series(
                    name, key[1], kind,
                    raw_capacity=self.raw_capacity,
                    downsample_factor=self.downsample_factor,
                    downsampled_capacity=self.downsampled_capacity,
                )
            return s

    def record(
        self,
        name: str,
        value: float,
        labels: Mapping[str, str] | None = None,
        t: float | None = None,
        kind: str = "gauge",
    ) -> None:
        """Record one sample directly (series created on demand)."""
        s = self.series(name, labels, kind)
        if s is not None:
            with self._lock:
                s.append(t if t is not None else time.perf_counter(), value)

    def observe_registry(self, registry: "Registry", now: float) -> list[tuple]:
        """Snapshot every instrument into the store.

        Counters/gauges contribute their value; histograms contribute
        ``<name>_count`` and ``<name>_sum`` series (enough for windowed
        rates and means without per-bucket storage).  Returns the samples
        whose value *changed* since the previous tick, as
        ``(name, labels_dict, value)`` triples -- the compact payload the
        event-log side channel persists.
        """
        changed: list[tuple] = []
        for inst in registry.instruments():
            for key, child in inst.children().items():
                if inst.kind == "histogram":
                    pairs = (
                        (inst.name + "_count", float(child.count), "counter"),
                        (inst.name + "_sum", child.sum, "counter"),
                    )
                else:
                    pairs = ((inst.name, child.value, inst.kind),)
                for name, value, kind in pairs:
                    s = self.series(name, key, kind)
                    if s is None:
                        continue
                    with self._lock:
                        if s.append(now, value):
                            changed.append((name, dict(key), value))
        return changed

    # -- queries ----------------------------------------------------------

    def names(self) -> list[str]:
        with self._lock:
            return sorted({name for name, _ in self._series})

    def all_series(self, name: str | None = None) -> list[Series]:
        with self._lock:
            return [
                s for (n, _), s in sorted(self._series.items())
                if name is None or n == name
            ]

    def query(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        start: float = -math.inf,
        end: float = math.inf,
    ) -> list[dict]:
        """Range scan over every series of ``name`` whose labels contain
        ``labels``; each result carries its full label set and samples."""
        want = label_key(labels) if labels else ()
        out = []
        for s in self.all_series(name):
            if want and not set(want) <= set(s.labels):
                continue
            with self._lock:
                out.append(s.to_dict(start, end))
        return out

    def rate(
        self,
        name: str,
        window: float,
        labels: Mapping[str, str] | None = None,
        now: float | None = None,
    ) -> float:
        """Summed per-second rate across matching series (``rate()``)."""
        want = label_key(labels) if labels else ()
        total = 0.0
        for s in self.all_series(name):
            if want and not set(want) <= set(s.labels):
                continue
            with self._lock:
                total += s.rate(window, now)
        return total

    def dump(self, window: float | None = None, now: float | None = None) -> list[dict]:
        """JSON-ready snapshot of every series (``/api/timeseries``,
        flight-recorder bundles); ``window`` trims to the trailing seconds."""
        series = self.all_series()
        if window is not None:
            if now is None:
                now = max(
                    (s.latest()[0] for s in series if s.latest() is not None),
                    default=0.0,
                )
            start = now - window
        else:
            start = -math.inf
        out = []
        with self._lock:
            for s in series:
                d = s.to_dict(start)
                if d["samples"]:
                    out.append(d)
        return out


class MetricsSampler:
    """Driver thread that snapshots a registry into a store at an interval.

    Tick sinks receive ``(now, changed_samples)`` after every snapshot
    (the event log's ``series`` side channel); tick hooks receive
    ``(now)`` (the alert engine).  Both are exception-isolated: a raising
    consumer can never kill the sampler.
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        registry: "Registry | None" = None,
        interval: float = 0.25,
    ) -> None:
        if registry is None:
            from repro.obs.registry import REGISTRY

            registry = REGISTRY
        self.store = store
        self.registry = registry
        self.interval = interval
        self.ticks = 0
        self.samples_written = 0
        #: (consumer, exception) pairs from raising sinks/hooks
        self.consumer_errors: list[tuple] = []
        self._tick_sinks: list[Callable[[float, list], None]] = []
        self._tick_hooks: list[Callable[[float], None]] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def add_tick_sink(self, sink: Callable[[float, list], None]) -> None:
        self._tick_sinks.append(sink)

    def add_tick_hook(self, hook: Callable[[float], None]) -> None:
        self._tick_hooks.append(hook)

    def tick(self, now: float | None = None) -> list[tuple]:
        """One sampling pass (callable directly in tests)."""
        if now is None:
            now = time.perf_counter()
        changed = self.store.observe_registry(self.registry, now)
        self.ticks += 1
        self.samples_written += len(changed)
        if changed:
            for sink in self._tick_sinks:
                try:
                    sink(now, changed)
                except Exception as exc:  # isolation
                    self.consumer_errors.append((sink, exc))
        for hook in self._tick_hooks:
            try:
                hook(now)
            except Exception as exc:
                self.consumer_errors.append((hook, exc))
        return changed

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Final tick, then join the thread (bounded) -- no leaked threads."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        try:
            self.tick()  # flush the last interval's worth of changes
        except Exception:
            pass

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.tick()
            except Exception:  # never kill the sampler on a transient error
                pass


__all__ = [
    "Bin",
    "Series",
    "TimeSeriesStore",
    "MetricsSampler",
    "label_key",
]
