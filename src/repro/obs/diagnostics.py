"""Skew / straggler / cache-pressure diagnostics over engine telemetry.

The interpretive layer between raw telemetry (TaskMetrics, the registry
series) and the tuning advisor.  Three analyses:

- **partition skew** -- per-stage distributions of records, bytes, and
  duration across partitions, scored with the Gini coefficient and the
  max-over-median ratio.  Resampling cost in the paper's workloads is
  dominated by a skewed tail of SNP-sets (Segal et al.; Larson & Owen),
  so a stage whose slowest partition is several times its median is the
  canonical "why is this configuration slow" answer.
- **stragglers** -- individual task attempts that ran far longer than
  their stage's median (configurable multiplier, with an absolute floor
  so trivial stages don't alarm).
- **cache pressure** -- eviction and recompute ratios derived from the
  BlockManager counters in the process-wide metrics registry.

:class:`DiagnosticsListener` runs the first two online: it watches
``StageCompleted`` events, posts :class:`StageSkewDetected` /
:class:`StragglerDetected` back onto the bus, and logs a structured
warning for each, so skew shows up in the live UI and the event log while
the job is still running.  The same pure functions run offline inside
``sparkscore doctor`` over a loaded event log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.engine.listener import (
    Listener,
    StageCompleted,
    StageSkewDetected,
    StragglerDetected,
)
from repro.obs.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import EngineConfig
    from repro.engine.listener import ListenerBus
    from repro.engine.metrics import StageMetrics
    from repro.obs.registry import Registry

log = get_logger("repro.diagnostics")

#: per-partition metrics the skew detector scores
SKEW_METRICS = ("records", "bytes", "duration")


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative sample: 0 = uniform, ->1 = one
    partition holds everything.  Returns 0.0 for degenerate input."""
    vals = sorted(v for v in values if v >= 0)
    n = len(vals)
    total = sum(vals)
    if n < 2 or total <= 0:
        return 0.0
    # mean absolute difference formulation via the sorted-rank identity
    weighted = sum((2 * (i + 1) - n - 1) * v for i, v in enumerate(vals))
    return weighted / (n * total)


def median(values: Sequence[float]) -> float:
    vals = sorted(values)
    if not vals:
        return 0.0
    mid = len(vals) // 2
    if len(vals) % 2:
        return vals[mid]
    return (vals[mid - 1] + vals[mid]) / 2


def _task_value(rec, metric: str) -> float:
    if metric == "duration":
        return rec.duration_seconds
    m = rec.metrics
    if metric == "records":
        return float(m.records_read + m.shuffle_records_read)
    if metric == "bytes":
        return float(m.shuffle_bytes_read + m.shuffle_bytes_written)
    raise ValueError(f"unknown skew metric {metric!r}")


def stage_distribution(stage: "StageMetrics", metric: str) -> dict[int, float]:
    """Per-partition value of ``metric`` over successful first-result tasks.

    Retried partitions keep the successful attempt's value.
    """
    out: dict[int, float] = {}
    for rec in stage.tasks:
        if rec.succeeded:
            out[rec.partition] = _task_value(rec, metric)
    return out


@dataclass
class SkewReport:
    """One skewed (stage, metric) pair."""

    stage_id: int
    stage_name: str
    metric: str
    num_tasks: int
    max_value: float
    median_value: float
    max_over_median: float
    gini: float
    #: partition holding the maximum
    max_partition: int

    def to_dict(self) -> dict:
        return {
            "stage_id": self.stage_id,
            "stage_name": self.stage_name,
            "metric": self.metric,
            "num_tasks": self.num_tasks,
            "max_value": self.max_value,
            "median_value": self.median_value,
            "max_over_median": self.max_over_median,
            "gini": self.gini,
            "max_partition": self.max_partition,
        }


@dataclass
class StragglerReport:
    """One task attempt that ran far past its stage's median duration."""

    stage_id: int
    stage_name: str
    partition: int
    attempt: int
    executor_id: str
    duration_seconds: float
    median_seconds: float
    ratio: float

    def to_dict(self) -> dict:
        return {
            "stage_id": self.stage_id,
            "stage_name": self.stage_name,
            "partition": self.partition,
            "attempt": self.attempt,
            "executor_id": self.executor_id,
            "duration_seconds": self.duration_seconds,
            "median_seconds": self.median_seconds,
            "ratio": self.ratio,
        }


def detect_skew(
    stage: "StageMetrics",
    *,
    max_over_median: float = 4.0,
    min_tasks: int = 4,
) -> list[SkewReport]:
    """Score each metric's partition distribution; report those whose
    max/median ratio crosses the threshold.

    Stages with fewer than ``min_tasks`` partitions are skipped: a 2-task
    stage is trivially "skewed" by any imbalance, and repartitioning it is
    rarely the right advice.
    """
    reports: list[SkewReport] = []
    for metric in SKEW_METRICS:
        dist = stage_distribution(stage, metric)
        if len(dist) < min_tasks:
            continue
        values = list(dist.values())
        med = median(values)
        peak_partition, peak = max(dist.items(), key=lambda kv: kv[1])
        if peak <= 0:
            continue
        # a zero median with a non-zero max is infinite skew; report it
        # with a finite sentinel ratio so the evidence stays JSON-clean
        ratio = peak / med if med > 0 else math.inf
        if ratio >= max_over_median:
            reports.append(
                SkewReport(
                    stage_id=stage.stage_id,
                    stage_name=stage.name,
                    metric=metric,
                    num_tasks=len(dist),
                    max_value=peak,
                    median_value=med,
                    max_over_median=ratio if math.isfinite(ratio) else peak,
                    gini=gini(values),
                    max_partition=peak_partition,
                )
            )
    return reports


def detect_stragglers(
    stage: "StageMetrics",
    *,
    multiplier: float = 3.0,
    min_seconds: float = 0.1,
    min_tasks: int = 4,
) -> list[StragglerReport]:
    """Tasks whose duration exceeds ``multiplier`` x the stage median.

    ``min_seconds`` is an absolute floor: a 3 ms task in a 1 ms-median
    stage is noise, not a straggler.
    """
    succeeded = [t for t in stage.tasks if t.succeeded]
    if len(succeeded) < min_tasks:
        return []
    med = median([t.duration_seconds for t in succeeded])
    out: list[StragglerReport] = []
    for rec in succeeded:
        if rec.duration_seconds < min_seconds:
            continue
        if med > 0 and rec.duration_seconds >= multiplier * med:
            out.append(
                StragglerReport(
                    stage_id=stage.stage_id,
                    stage_name=stage.name,
                    partition=rec.partition,
                    attempt=rec.attempt,
                    executor_id=rec.executor_id,
                    duration_seconds=rec.duration_seconds,
                    median_seconds=med,
                    ratio=rec.duration_seconds / med,
                )
            )
    return out


@dataclass
class CachePressureReport:
    """Eviction / recompute pressure derived from BlockManager counters."""

    blocks_cached: int = 0
    blocks_evicted: int = 0
    blocks_spilled: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def eviction_ratio(self) -> float:
        """Fraction of cached blocks that were later evicted."""
        return self.blocks_evicted / self.blocks_cached if self.blocks_cached else 0.0

    @property
    def hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "blocks_cached": self.blocks_cached,
            "blocks_evicted": self.blocks_evicted,
            "blocks_spilled": self.blocks_spilled,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "eviction_ratio": self.eviction_ratio,
            "hit_rate": self.hit_rate,
        }


def _counter_total(registry: "Registry", name: str) -> int:
    inst = registry.get(name)
    if inst is None:
        return 0
    return int(sum(child.value for child in inst.children().values()))


def analyze_cache_pressure(registry: "Registry" | None = None) -> CachePressureReport:
    """Fold the BlockManager registry series into one pressure report."""
    if registry is None:
        from repro.obs.registry import REGISTRY

        registry = REGISTRY
    return CachePressureReport(
        blocks_cached=_counter_total(registry, "engine_blocks_cached_total"),
        blocks_evicted=_counter_total(registry, "engine_blocks_evicted_total"),
        blocks_spilled=_counter_total(registry, "engine_blocks_spilled_total"),
        cache_hits=_counter_total(registry, "engine_cache_hits_total"),
        cache_misses=_counter_total(registry, "engine_cache_misses_total"),
    )


class DiagnosticsListener(Listener):
    """Online skew/straggler detection on stage completion.

    For every completed stage this runs :func:`detect_skew` and
    :func:`detect_stragglers` with the context's configured thresholds,
    re-posts findings as typed bus events (so other listeners -- UI
    progress, event log -- see them), and emits structured warnings.
    Reports accumulate for the life of the context; ``snapshot()`` serves
    the UI Diagnostics panel.
    """

    def __init__(
        self,
        bus: "ListenerBus",
        *,
        skew_max_over_median: float = 4.0,
        straggler_multiplier: float = 3.0,
        straggler_min_seconds: float = 0.1,
        min_tasks: int = 4,
    ) -> None:
        self._bus = bus
        self.skew_max_over_median = skew_max_over_median
        self.straggler_multiplier = straggler_multiplier
        self.straggler_min_seconds = straggler_min_seconds
        self.min_tasks = min_tasks
        self.skew_reports: list[SkewReport] = []
        self.straggler_reports: list[StragglerReport] = []

    @classmethod
    def from_config(cls, bus: "ListenerBus", config: "EngineConfig") -> "DiagnosticsListener":
        return cls(
            bus,
            skew_max_over_median=config.skew_max_over_median,
            straggler_multiplier=config.straggler_multiplier,
            straggler_min_seconds=config.straggler_min_seconds,
            min_tasks=config.diagnostics_min_tasks,
        )

    def on_stage_completed(self, event: StageCompleted) -> None:
        stage = event.stage
        # dedupe per (stage, metric): retried stage attempts re-complete
        seen_skew = {(r.stage_id, r.metric) for r in self.skew_reports}
        for report in detect_skew(
            stage,
            max_over_median=self.skew_max_over_median,
            min_tasks=self.min_tasks,
        ):
            if (report.stage_id, report.metric) in seen_skew:
                continue
            self.skew_reports.append(report)
            self._bus.post(
                StageSkewDetected(
                    stage_id=report.stage_id,
                    job_id=event.job_id,
                    metric=report.metric,
                    max_over_median=report.max_over_median,
                    gini=report.gini,
                    max_partition=report.max_partition,
                )
            )
            log.warning(
                "stage partition skew detected",
                stage_id=report.stage_id,
                job_id=event.job_id,
                metric=report.metric,
                max_over_median=round(report.max_over_median, 2),
                gini=round(report.gini, 3),
                max_partition=report.max_partition,
            )
        seen_straggler = {
            (r.stage_id, r.partition, r.attempt) for r in self.straggler_reports
        }
        for report in detect_stragglers(
            stage,
            multiplier=self.straggler_multiplier,
            min_seconds=self.straggler_min_seconds,
            min_tasks=self.min_tasks,
        ):
            if (report.stage_id, report.partition, report.attempt) in seen_straggler:
                continue
            self.straggler_reports.append(report)
            self._bus.post(
                StragglerDetected(
                    stage_id=report.stage_id,
                    job_id=event.job_id,
                    partition=report.partition,
                    attempt=report.attempt,
                    executor_id=report.executor_id,
                    duration_seconds=report.duration_seconds,
                    median_seconds=report.median_seconds,
                )
            )
            log.warning(
                "straggler task detected",
                stage_id=report.stage_id,
                job_id=event.job_id,
                partition=report.partition,
                executor_id=report.executor_id,
                duration_seconds=round(report.duration_seconds, 4),
                median_seconds=round(report.median_seconds, 4),
            )

    def snapshot(self) -> dict:
        """JSON-ready view for the UI ``/api/diagnostics`` endpoint."""
        return {
            "skew": [r.to_dict() for r in self.skew_reports],
            "stragglers": [r.to_dict() for r in self.straggler_reports],
            "cache_pressure": analyze_cache_pressure().to_dict(),
        }


__all__ = [
    "SKEW_METRICS",
    "gini",
    "median",
    "stage_distribution",
    "SkewReport",
    "StragglerReport",
    "CachePressureReport",
    "detect_skew",
    "detect_stragglers",
    "analyze_cache_pressure",
    "DiagnosticsListener",
]
