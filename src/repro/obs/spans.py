"""Structured tracing: hierarchical spans and Chrome ``trace_event`` export.

A :class:`Span` is one timed region -- a job, a stage execution, or a task
attempt -- with a parent pointer forming the hierarchy
``job -> stage -> task``.  Spans carry wall/compute time and shuffle/cache
attributes pulled from task metrics.

Spans come from two places:

- **live**: attach a :class:`TracingListener` to a context's listener bus
  (``Context(..., trace_path=...)`` does this for you);
- **offline**: :func:`spans_from_jobs` rebuilds the same hierarchy from
  persisted :class:`~repro.engine.metrics.JobMetrics` (i.e. an event log),
  which is what ``sparkscore history --export-trace`` uses.

Exports: :func:`write_spans_jsonl` / :func:`read_spans_jsonl` round-trip
the span list; :func:`to_chrome_trace` emits Chrome ``trace_event`` JSON
(load via ``chrome://tracing`` or https://ui.perfetto.dev), one track per
executor plus a driver track for job/stage spans.
"""

from __future__ import annotations

import itertools
import json
import threading
from dataclasses import dataclass, field
from typing import IO, TYPE_CHECKING, Iterable

from repro.engine.listener import (
    JobEnd,
    JobStart,
    Listener,
    StageCompleted,
    StageSubmitted,
    TaskEnd,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.metrics import JobMetrics


@dataclass
class Span:
    """One timed region; ``start``/``end`` are monotonic-clock seconds."""

    span_id: int
    parent_id: int | None
    name: str
    category: str  # "job" | "stage" | "task"
    start: float
    end: float
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            span_id=data["span_id"],
            parent_id=data["parent_id"],
            name=data["name"],
            category=data["category"],
            start=data["start"],
            end=data["end"],
            attrs=dict(data.get("attrs", {})),
        )


def _task_attrs(record) -> dict:
    m = record.metrics
    return {
        "executor_id": record.executor_id,
        "stage_id": record.stage_id,
        "partition": record.partition,
        "attempt": record.attempt,
        "succeeded": record.succeeded,
        "compute_seconds": m.compute_seconds,
        "cache_hits": m.cache_hits,
        "cache_misses": m.cache_misses,
        "remote_cache_hits": m.remote_cache_hits,
        "shuffle_bytes_read": m.shuffle_bytes_read,
        "shuffle_bytes_written": m.shuffle_bytes_written,
        "shuffle_records_read": m.shuffle_records_read,
        "shuffle_records_written": m.shuffle_records_written,
        "size_estimation_seconds": m.size_estimation_seconds,
        "deserialize_seconds": m.deserialize_seconds,
        "result_serialize_seconds": m.result_serialize_seconds,
        "gc_pause_seconds": m.gc_pause_seconds,
        "peak_rss_bytes": m.peak_rss_bytes,
    }


def _fragment_children(ids, task_span: "Span", record, task_start: float) -> list["Span"]:
    """Worker-shipped sub-phase fragments as children of the task span.

    Fragments arrive as seconds relative to the worker's task start; they
    are rebased onto the driver's task-span timeline here.
    """
    children = []
    for frag in getattr(record, "span_fragments", None) or ():
        children.append(Span(
            next(ids), task_span.span_id,
            f"{task_span.name}:{frag['name']}", "task_phase",
            task_start + frag["start"], task_start + frag["end"],
            {"executor_id": record.executor_id, "phase": frag["name"]},
        ))
    return children


class TracingListener(Listener):
    """Builds the span tree live from bus events.  Thread-safe.

    When a ``trace_id`` is given (the context's per-driver W3C-style trace
    id) every span is stamped with it, so traces from several drivers
    sharing one fleet remain distinguishable after export.
    """

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.spans: list[Span] = []
        self._open_jobs: dict[int, Span] = {}
        self._open_stages: dict[tuple[int, int], Span] = {}
        self._stage_jobs: dict[int, int] = {}  # stage_id -> owning job span id

    def _new_span(self, parent_id, name, category, start, end, attrs) -> Span:
        if self.trace_id is not None:
            attrs = {**attrs, "trace_id": self.trace_id}
        span = Span(next(self._ids), parent_id, name, category, start, end, attrs)
        self.spans.append(span)
        return span

    def open_stage_span_id(self, stage_id: int) -> int | None:
        """Span id of the newest open stage span for ``stage_id``.

        This is the ``parent_span_id`` half of the trace context the
        scheduler ships in every cluster/process task envelope: the worker's
        task-phase fragments ultimately stitch under this span.
        """
        with self._lock:
            span_id = None
            for (sid, _), open_span in self._open_stages.items():
                if sid == stage_id:
                    span_id = open_span.span_id
            return span_id

    def on_job_start(self, event: JobStart) -> None:
        with self._lock:
            span = self._new_span(
                None, f"job {event.job_id}: {event.description}", "job",
                event.time, event.time, {"job_id": event.job_id},
            )
            self._open_jobs[event.job_id] = span

    def on_stage_submitted(self, event: StageSubmitted) -> None:
        with self._lock:
            job_span = self._open_jobs.get(event.job_id)
            span = self._new_span(
                job_span.span_id if job_span else None,
                event.name, "stage", event.time, event.time,
                {
                    "stage_id": event.stage_id,
                    "attempt": event.attempt,
                    "num_tasks": event.num_tasks,
                    "job_id": event.job_id,
                },
            )
            self._open_stages[(event.stage_id, event.attempt)] = span
            self._stage_jobs[event.stage_id] = span.span_id

    def on_task_end(self, event: TaskEnd) -> None:
        record = event.record
        with self._lock:
            # record.attempt is the *task* attempt; find the newest open
            # stage span for this stage id (dicts preserve insertion order)
            stage_span = None
            for (sid, _), open_span in self._open_stages.items():
                if sid == record.stage_id:
                    stage_span = open_span
            start = record.start_time or (event.time - record.duration_seconds)
            task_span = self._new_span(
                stage_span.span_id if stage_span else None,
                f"task {record.stage_id}.{record.partition}#{record.attempt}",
                "task", start, start + record.duration_seconds, _task_attrs(record),
            )
            fragments = _fragment_children(self._ids, task_span, record, start)
            if self.trace_id is not None:
                for frag in fragments:
                    frag.attrs["trace_id"] = self.trace_id
            self.spans.extend(fragments)

    def on_stage_completed(self, event: StageCompleted) -> None:
        with self._lock:
            span = self._open_stages.pop((event.stage.stage_id, event.stage.attempt), None)
            if span is not None:
                span.end = event.time
                span.attrs["failed"] = event.failed
                span.attrs["total_task_seconds"] = event.stage.total_task_seconds

    def on_job_end(self, event: JobEnd) -> None:
        with self._lock:
            span = self._open_jobs.pop(event.job_id, None)
            if span is not None:
                span.end = event.time
                span.attrs["wall_seconds"] = event.job.wall_seconds

    def open_spans(self) -> list[Span]:
        """Spans still open right now (crashed-in-flight work, for the
        flight recorder's post-mortem bundles)."""
        with self._lock:
            return list(self._open_jobs.values()) + list(self._open_stages.values())


def spans_from_jobs(jobs: Iterable["JobMetrics"]) -> list[Span]:
    """Rebuild the job -> stage -> task span hierarchy from job metrics.

    Works on any event log: v2 logs carry real monotonic timestamps; for v1
    logs (all timestamps zero) a synthetic timeline is laid out from the
    recorded wall/duration figures, preserving relative structure.
    """
    ids = itertools.count(1)
    spans: list[Span] = []
    clock = 0.0
    for job in jobs:
        synthetic = job.submit_time == 0.0
        job_start = clock if synthetic else job.submit_time
        job_span = Span(
            next(ids), None, f"job {job.job_id}: {job.description}", "job",
            job_start, job_start + job.wall_seconds,
            {"job_id": job.job_id, "wall_seconds": job.wall_seconds},
        )
        spans.append(job_span)
        stage_clock = job_start
        for stage in job.stages:
            stage_start = stage_clock if stage.submit_time == 0.0 else stage.submit_time
            stage_span = Span(
                next(ids), job_span.span_id, stage.name, "stage",
                stage_start, stage_start + stage.wall_seconds,
                {
                    "stage_id": stage.stage_id,
                    "attempt": stage.attempt,
                    "num_tasks": stage.num_tasks,
                    "job_id": job.job_id,
                    "total_task_seconds": stage.total_task_seconds,
                },
            )
            spans.append(stage_span)
            for record in stage.tasks:
                task_start = stage_start if record.start_time == 0.0 else record.start_time
                task_span = Span(
                    next(ids), stage_span.span_id,
                    f"task {record.stage_id}.{record.partition}#{record.attempt}",
                    "task", task_start, task_start + record.duration_seconds,
                    _task_attrs(record),
                )
                spans.append(task_span)
                spans.extend(_fragment_children(ids, task_span, record, task_start))
            stage_clock = stage_span.end
        clock = max(clock, job_span.end) + 1e-9
    return spans


# -- JSONL export ------------------------------------------------------------


def write_spans_jsonl(spans: Iterable[Span], path_or_file: str | IO[str]) -> int:
    own = isinstance(path_or_file, str)
    fh: IO[str] = open(path_or_file, "w") if own else path_or_file  # type: ignore[assignment]
    count = 0
    try:
        for span in spans:
            fh.write(json.dumps(span.to_dict(), separators=(",", ":")) + "\n")
            count += 1
    finally:
        if own:
            fh.close()
    return count


def read_spans_jsonl(path_or_file: str | IO[str]) -> list[Span]:
    own = isinstance(path_or_file, str)
    fh: IO[str] = open(path_or_file) if own else path_or_file  # type: ignore[assignment]
    try:
        return [Span.from_dict(json.loads(line)) for line in fh if line.strip()]
    finally:
        if own:
            fh.close()


# -- Chrome trace_event export ------------------------------------------------


def to_chrome_trace(spans: list[Span]) -> dict:
    """Chrome ``trace_event`` JSON object format.

    Job and stage spans render on a ``driver`` track; task spans render on
    one track per executor.  Timestamps are microseconds relative to the
    earliest span.
    """
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    t0 = min(s.start for s in spans)
    tids: dict[str, int] = {"driver": 0}
    events: list[dict] = []
    for span in spans:
        if span.category in ("task", "task_phase"):
            track = str(span.attrs.get("executor_id", "executor"))
        else:
            track = "driver"
        tid = tids.setdefault(track, len(tids))
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": round((span.start - t0) * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "pid": 1,
            "tid": tid,
            "args": span.attrs,
        })
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": track},
        }
        for track, tid in sorted(tids.items(), key=lambda kv: kv[1])
    ]
    meta.append({"name": "process_name", "ph": "M", "pid": 1,
                 "args": {"name": "repro engine"}})
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: list[Span], path_or_file: str | IO[str]) -> None:
    own = isinstance(path_or_file, str)
    fh: IO[str] = open(path_or_file, "w") if own else path_or_file  # type: ignore[assignment]
    try:
        json.dump(to_chrome_trace(spans), fh)
    finally:
        if own:
            fh.close()


__all__ = [
    "Span",
    "TracingListener",
    "spans_from_jobs",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
]
