"""Structured JSONL logging with automatic task correlation.

The engine's logging layer.  Three pieces:

- :class:`StructuredLogger` (via :func:`get_logger`) -- emits
  :class:`LogRecord` instances carrying a level, a message, free-form
  structured fields, and *correlation ids* (app/job/stage/partition/
  attempt/executor) injected automatically from the ambient
  :func:`log_context` that the scheduler and executors push around task
  execution.  A log call inside a task needs no plumbing to know which
  task it belongs to -- exactly like Spark's MDC-enriched log4j layout.
- :class:`LogBus` -- the per-process fan-out point.  Every record lands in
  a bounded ring buffer (the live UI serves it at ``/api/logs``) and is
  offered to registered sinks: a JSONL file (``--log-file``), a
  human-readable console sink (``--log-level`` on a TTY), and the event
  log (v4 ``log`` record lines interleaved with job/telemetry records).
  Sinks are isolated -- a raising sink can never fail the engine.
- worker capture (:func:`capture_logs`) -- the processes backend wraps
  each task attempt in a capture; records emitted worker-side ship home
  with the task result (the same channel as span fragments) and are
  replayed into the driver's bus with their correlation ids intact, so
  ``serial``/``threads``/``processes`` runs expose identical log streams.

Levels are the classic four (``debug`` < ``info`` < ``warning`` <
``error``); the bus level gates emission up front so disabled records
cost one dict lookup and one comparison.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import IO, Any, Callable, Iterator

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: correlation fields recognized on records (order used by renderers)
CORRELATION_FIELDS = (
    "app", "job_id", "stage_id", "partition", "attempt", "executor_id",
)


def _level_value(level: str) -> int:
    try:
        return LEVELS[level]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from {', '.join(LEVELS)}"
        ) from None


@dataclass
class LogRecord:
    """One structured log line.

    ``time`` is monotonic (:func:`time.perf_counter`), consistent with
    every other engine timestamp, so log records interleave correctly
    with spans and telemetry from the same run.
    """

    time: float
    level: str
    logger: str
    message: str
    #: correlation ids; None when the record was emitted outside that scope
    app: str | None = None
    job_id: int | None = None
    stage_id: int | None = None
    partition: int | None = None
    attempt: int | None = None
    executor_id: str | None = None
    #: free-form structured payload (must be JSON-serializable)
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Compact JSON-ready dict; unset correlation ids are omitted."""
        out: dict[str, Any] = {
            "time": self.time,
            "level": self.level,
            "logger": self.logger,
            "message": self.message,
        }
        for name in CORRELATION_FIELDS:
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.fields:
            out["fields"] = self.fields
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "LogRecord":
        return cls(
            time=data.get("time", 0.0),
            level=data.get("level", "info"),
            logger=data.get("logger", ""),
            message=data.get("message", ""),
            app=data.get("app"),
            job_id=data.get("job_id"),
            stage_id=data.get("stage_id"),
            partition=data.get("partition"),
            attempt=data.get("attempt"),
            executor_id=data.get("executor_id"),
            fields=dict(data.get("fields") or {}),
        )

    def correlation(self) -> tuple:
        """(job_id, stage_id, partition, attempt, executor_id) key."""
        return (self.job_id, self.stage_id, self.partition, self.attempt,
                self.executor_id)


# -- ambient correlation context ----------------------------------------------

_CONTEXT = threading.local()


def _context_stack() -> list[dict]:
    stack = getattr(_CONTEXT, "stack", None)
    if stack is None:
        stack = _CONTEXT.stack = []
    return stack


def current_log_context() -> dict:
    """Merged view of every pushed context frame on this thread."""
    merged: dict = {}
    for frame in _context_stack():
        merged.update(frame)
    return merged


@contextmanager
def log_context(**ids: Any) -> Iterator[None]:
    """Push correlation ids for the duration of the block.

    Frames nest: a task frame pushed inside a job frame sees both sets of
    ids.  Unknown keys land in ``LogRecord.fields``.
    """
    stack = _context_stack()
    stack.append(ids)
    try:
        yield
    finally:
        stack.pop()


# -- the bus ------------------------------------------------------------------


class LogBus:
    """Bounded ring buffer plus sink fan-out for one process.

    Thread-safe.  ``level`` gates emission: records below it are counted
    (``records_suppressed``) and dropped before any formatting cost.
    """

    def __init__(self, capacity: int = 2048, level: str = "info") -> None:
        self._lock = threading.Lock()
        self._ring: deque[LogRecord] = deque(maxlen=capacity)
        self._sinks: list[Callable[[LogRecord], None]] = []
        self._level_value = _level_value(level)
        self.level = level
        self.records_emitted = 0
        self.records_suppressed = 0
        #: (sink, record, exception) triples from raising sinks
        self.sink_errors: list[tuple] = []

    def set_level(self, level: str) -> None:
        value = _level_value(level)
        with self._lock:
            self.level = level
            self._level_value = value

    def is_enabled_for(self, level: str) -> bool:
        return _level_value(level) >= self._level_value

    def emit(self, record: LogRecord) -> None:
        if _level_value(record.level) < self._level_value:
            with self._lock:
                self.records_suppressed += 1
            return
        with self._lock:
            self._ring.append(record)
            self.records_emitted += 1
            sinks = list(self._sinks)
        for sink in sinks:
            try:
                sink(record)
            except Exception as exc:  # isolation: logging never fails a job
                with self._lock:
                    self.sink_errors.append((sink, record, exc))

    def replay(self, record: LogRecord) -> None:
        """Re-emit an already-filtered record (worker shipping, log replay).

        Bypasses the level gate: the producing process filtered at its own
        configured level, and re-filtering here would silently drop records
        when the driver runs at a stricter level than it asked workers for.
        """
        with self._lock:
            self._ring.append(record)
            self.records_emitted += 1
            sinks = list(self._sinks)
        for sink in sinks:
            try:
                sink(record)
            except Exception as exc:
                with self._lock:
                    self.sink_errors.append((sink, record, exc))

    def records(self, level: str | None = None, limit: int | None = None) -> list[LogRecord]:
        """Snapshot of the ring buffer, optionally filtered / truncated."""
        with self._lock:
            out = list(self._ring)
        if level is not None:
            floor = _level_value(level)
            out = [r for r in out if _level_value(r.level) >= floor]
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def add_sink(self, sink: Callable[[LogRecord], None]) -> Callable[[LogRecord], None]:
        with self._lock:
            self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Callable[[LogRecord], None]) -> None:
        with self._lock:
            try:
                self._sinks.remove(sink)
            except ValueError:
                pass

    def clear(self) -> None:
        """Drop buffered records and counters (sinks stay registered)."""
        with self._lock:
            self._ring.clear()
            self.records_emitted = 0
            self.records_suppressed = 0


#: default process-wide bus (the analogue of the root log4j logger)
LOG_BUS = LogBus()


# -- loggers ------------------------------------------------------------------


class StructuredLogger:
    """Named logger; every call folds in the ambient correlation context."""

    def __init__(self, name: str, bus: LogBus | None = None) -> None:
        self.name = name
        self._bus = bus

    @property
    def bus(self) -> LogBus:
        return self._bus if self._bus is not None else LOG_BUS

    def is_enabled_for(self, level: str) -> bool:
        return self.bus.is_enabled_for(level)

    def log(self, level: str, message: str, **fields: Any) -> None:
        bus = self.bus
        if not bus.is_enabled_for(level):
            bus.records_suppressed += 1
            return
        merged = current_log_context()
        record = LogRecord(
            time=time.perf_counter(),
            level=level,
            logger=self.name,
            message=message,
        )
        extra: dict = {}
        for key, value in merged.items():
            if key in CORRELATION_FIELDS:
                setattr(record, key, value)
            else:
                extra[key] = value
        for key, value in fields.items():
            if key in CORRELATION_FIELDS:
                setattr(record, key, value)
            else:
                extra[key] = value
        if extra:
            record.fields = extra
        bus.emit(record)

    def debug(self, message: str, **fields: Any) -> None:
        self.log("debug", message, **fields)

    def info(self, message: str, **fields: Any) -> None:
        self.log("info", message, **fields)

    def warning(self, message: str, **fields: Any) -> None:
        self.log("warning", message, **fields)

    def error(self, message: str, **fields: Any) -> None:
        self.log("error", message, **fields)


_LOGGERS: dict[str, StructuredLogger] = {}
_LOGGERS_LOCK = threading.Lock()


def get_logger(name: str) -> StructuredLogger:
    """Process-wide named logger bound to the default bus."""
    with _LOGGERS_LOCK:
        logger = _LOGGERS.get(name)
        if logger is None:
            logger = _LOGGERS[name] = StructuredLogger(name)
        return logger


# -- sinks --------------------------------------------------------------------


class JsonlLogSink:
    """Appends each record as one JSON line (the ``--log-file`` sink)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._fh: IO[str] | None = None
        self.records_written = 0

    def __call__(self, record: LogRecord) -> None:
        with self._lock:
            if self._fh is None:
                self._fh = open(self.path, "a")
            self._fh.write(json.dumps(record.to_dict(), separators=(",", ":")) + "\n")
            self.records_written += 1

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                self._fh.close()
                self._fh = None


def format_record(record: LogRecord) -> str:
    """One human-readable line: level, logger, correlation, message, fields."""
    ids = []
    if record.job_id is not None:
        ids.append(f"job={record.job_id}")
    if record.stage_id is not None:
        ids.append(f"stage={record.stage_id}")
    if record.partition is not None:
        ids.append(f"task={record.partition}.{record.attempt or 0}")
    if record.executor_id is not None:
        ids.append(f"exec={record.executor_id}")
    ctx = (" [" + " ".join(ids) + "]") if ids else ""
    extras = "".join(f" {k}={v}" for k, v in record.fields.items())
    return f"{record.level.upper():<7} {record.logger}{ctx} {record.message}{extras}"


class ConsoleLogSink:
    """Writes :func:`format_record` lines to a stream (stderr by default)."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, record: LogRecord) -> None:
        try:
            self.stream.write(format_record(record) + "\n")
        except (ValueError, OSError):  # closed stream
            pass


# -- worker capture -----------------------------------------------------------


@contextmanager
def capture_logs(
    bus: LogBus | None = None, level: str | None = None
) -> Iterator[list[LogRecord]]:
    """Collect records emitted on ``bus`` during the block.

    The processes backend wraps each worker task attempt in this; the
    captured records ship home with the task result and are replayed into
    the driver's bus.  ``level`` temporarily widens/narrows the bus gate so
    the driver's requested verbosity applies inside worker processes too.
    """
    bus = bus if bus is not None else LOG_BUS
    captured: list[LogRecord] = []
    sink = captured.append
    previous_level = bus.level
    if level is not None:
        bus.set_level(level)
    bus.add_sink(sink)
    try:
        yield captured
    finally:
        bus.remove_sink(sink)
        if level is not None:
            bus.set_level(previous_level)


__all__ = [
    "LEVELS",
    "LogRecord",
    "LogBus",
    "LOG_BUS",
    "StructuredLogger",
    "get_logger",
    "log_context",
    "current_log_context",
    "JsonlLogSink",
    "ConsoleLogSink",
    "format_record",
    "capture_logs",
]
