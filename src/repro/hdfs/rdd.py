"""RDD over a MiniHDFS text file: one partition per block, locality hints."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.engine.rdd import RDD
from repro.engine.task import TaskContext
from repro.hdfs.filesystem import MiniHDFS

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.context import Context


class HdfsTextFileRDD(RDD):
    """Lines of an HDFS file; partition ``i`` reads block ``i``.

    Because MiniHDFS blocks are line-aligned at write time, each block is a
    self-contained set of records -- no cross-block line repair needed.
    """

    def __init__(self, ctx: "Context", fs: MiniHDFS, path: str) -> None:
        super().__init__(ctx, [], f"hdfs:{path}")
        self._fs = fs
        self._path = path
        self._blocks = fs.blocks(path)

    def num_partitions(self) -> int:
        return len(self._blocks)

    def preferred_locations(self, split: int) -> list[str]:
        return self._fs.block_locations(self._blocks[split])

    def compute(self, split: int, tc: TaskContext) -> Iterator:
        data = self._fs.read_block(self._blocks[split])
        lines = data.decode("utf-8").splitlines()
        tc.metrics.records_read += len(lines)
        return iter(lines)
