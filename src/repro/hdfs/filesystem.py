"""MiniHDFS: an in-memory namenode + datanode block store.

Semantics kept from HDFS:

- files are immutable once written (write-once, read-many);
- content is stored in fixed-size blocks, each replicated on ``replication``
  distinct datanodes (placement is deterministic given the seed);
- reads fetch block data from any live replica; losing all replicas of a
  block makes the file unreadable (surfaced as :class:`BlockLostError`);
- text blocks split on line boundaries so every line lives in exactly one
  block (a simplification of Hadoop's byte-split-plus-line-repair that
  yields identical record assignment).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np


class HdfsError(RuntimeError):
    pass


class FileNotFound(HdfsError):
    pass


class FileExistsAlready(HdfsError):
    pass


class BlockLostError(HdfsError):
    """All replicas of a block are on dead datanodes."""


@dataclass
class BlockInfo:
    """Metadata for one block of a file."""

    block_id: int
    length: int
    #: datanode names holding a replica
    replicas: tuple[str, ...]


@dataclass
class FileStatus:
    path: str
    size: int
    num_blocks: int
    replication: int


@dataclass
class _DataNode:
    name: str
    host: str
    alive: bool = True
    #: block_id -> bytes
    blocks: dict[int, bytes] = field(default_factory=dict)

    @property
    def used_bytes(self) -> int:
        return sum(len(b) for b in self.blocks.values())


def _normalize(path: str) -> str:
    if path.startswith("hdfs://"):
        path = path[len("hdfs://") :]
        # strip an authority component if present ("hdfs://nn/foo")
        if "/" in path:
            head, _, rest = path.partition("/")
            if "." in head or head == "nn" or head == "":
                path = rest
            else:
                path = head + "/" + rest
    return "/" + path.strip("/")


class MiniHDFS:
    """The namenode: file -> blocks -> replica placement."""

    def __init__(
        self,
        num_datanodes: int = 4,
        block_size: int = 4 * 1024 * 1024,
        replication: int = 2,
        seed: int = 0,
        hosts: list[str] | None = None,
    ) -> None:
        if num_datanodes < 1:
            raise ValueError("need at least one datanode")
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self.replication = min(replication, num_datanodes)
        self._lock = threading.RLock()
        self._datanodes: dict[str, _DataNode] = {}
        for i in range(num_datanodes):
            host = hosts[i] if hosts is not None else f"host-{i}"
            name = f"dn-{i}"
            self._datanodes[name] = _DataNode(name, host)
        self._files: dict[str, list[BlockInfo]] = {}
        self._next_block_id = 0
        self._rng = np.random.default_rng(seed)
        self._placement_counter = 0

    # -- write path ----------------------------------------------------------

    def write_text(self, path: str, content: str, overwrite: bool = True) -> FileStatus:
        """Write a text file, splitting into line-aligned blocks."""
        return self.write_bytes(path, content.encode("utf-8"), overwrite, line_aligned=True)

    def write_bytes(
        self, path: str, content: bytes, overwrite: bool = True, line_aligned: bool = False
    ) -> FileStatus:
        path = _normalize(path)
        with self._lock:
            if path in self._files:
                if not overwrite:
                    raise FileExistsAlready(path)
                self.delete(path)
            chunks = self._split(content, line_aligned)
            blocks: list[BlockInfo] = []
            for chunk in chunks:
                block_id = self._next_block_id
                self._next_block_id += 1
                replicas = self._place_replicas()
                for name in replicas:
                    self._datanodes[name].blocks[block_id] = chunk
                blocks.append(BlockInfo(block_id, len(chunk), tuple(replicas)))
            self._files[path] = blocks
            return FileStatus(path, len(content), len(blocks), self.replication)

    def _split(self, content: bytes, line_aligned: bool) -> list[bytes]:
        if not content:
            return [b""]
        chunks: list[bytes] = []
        if not line_aligned:
            for start in range(0, len(content), self.block_size):
                chunks.append(content[start : start + self.block_size])
            return chunks
        start = 0
        n = len(content)
        while start < n:
            end = min(n, start + self.block_size)
            if end < n:
                newline = content.rfind(b"\n", start, end)
                if newline >= start:
                    end = newline + 1
                else:
                    # a single line longer than the block size: extend to
                    # the next newline (or EOF) so the line stays whole
                    newline = content.find(b"\n", end)
                    end = n if newline < 0 else newline + 1
            chunks.append(content[start:end])
            start = end
        return chunks

    def _place_replicas(self) -> list[str]:
        """Round-robin first replica + random distinct others (lock held)."""
        alive = [d.name for d in self._datanodes.values() if d.alive]
        if len(alive) < 1:
            raise HdfsError("no alive datanodes")
        k = min(self.replication, len(alive))
        first = alive[self._placement_counter % len(alive)]
        self._placement_counter += 1
        rest = [n for n in alive if n != first]
        extra = list(self._rng.choice(rest, size=k - 1, replace=False)) if k > 1 else []
        return [first, *[str(e) for e in extra]]

    # -- read path ---------------------------------------------------------------

    def read_bytes(self, path: str) -> bytes:
        return b"".join(self.read_block(b) for b in self.blocks(path))

    def read_text(self, path: str) -> str:
        return self.read_bytes(path).decode("utf-8")

    def read_block(self, block: BlockInfo) -> bytes:
        with self._lock:
            for name in block.replicas:
                node = self._datanodes.get(name)
                if node is not None and node.alive and block.block_id in node.blocks:
                    return node.blocks[block.block_id]
        raise BlockLostError(f"block {block.block_id}: all replicas lost")

    def blocks(self, path: str) -> list[BlockInfo]:
        path = _normalize(path)
        with self._lock:
            if path not in self._files:
                raise FileNotFound(path)
            return list(self._files[path])

    def block_locations(self, block: BlockInfo) -> list[str]:
        """Hosts (not datanode names) holding live replicas -- locality hints."""
        with self._lock:
            return [
                self._datanodes[name].host
                for name in block.replicas
                if name in self._datanodes and self._datanodes[name].alive
                and block.block_id in self._datanodes[name].blocks
            ]

    # -- namespace ops ----------------------------------------------------------------

    def exists(self, path: str) -> bool:
        with self._lock:
            return _normalize(path) in self._files

    def status(self, path: str) -> FileStatus:
        path = _normalize(path)
        with self._lock:
            if path not in self._files:
                raise FileNotFound(path)
            blocks = self._files[path]
            return FileStatus(path, sum(b.length for b in blocks), len(blocks), self.replication)

    def listdir(self, prefix: str = "/") -> list[str]:
        prefix = _normalize(prefix)
        if not prefix.endswith("/"):
            prefix = prefix + "/"
        with self._lock:
            return sorted(p for p in self._files if p.startswith(prefix) or prefix == "/")

    def delete(self, path: str) -> None:
        path = _normalize(path)
        with self._lock:
            blocks = self._files.pop(path, None)
            if blocks is None:
                return
            for block in blocks:
                for name in block.replicas:
                    node = self._datanodes.get(name)
                    if node is not None:
                        node.blocks.pop(block.block_id, None)

    # -- failure simulation ----------------------------------------------------------------

    def kill_datanode(self, name: str) -> None:
        with self._lock:
            if name not in self._datanodes:
                raise KeyError(name)
            self._datanodes[name].alive = False

    def revive_datanode(self, name: str) -> None:
        with self._lock:
            self._datanodes[name].alive = True

    def datanode_names(self) -> list[str]:
        with self._lock:
            return sorted(self._datanodes)

    def datanode_usage(self) -> dict[str, int]:
        with self._lock:
            return {name: node.used_bytes for name, node in self._datanodes.items()}

    def under_replicated_blocks(self) -> list[tuple[str, BlockInfo]]:
        """Blocks with fewer live replicas than the target replication."""
        out = []
        with self._lock:
            for path, blocks in self._files.items():
                for block in blocks:
                    live = sum(
                        1
                        for name in block.replicas
                        if self._datanodes.get(name) is not None
                        and self._datanodes[name].alive
                        and block.block_id in self._datanodes[name].blocks
                    )
                    if live < self.replication:
                        out.append((path, block))
        return out

    def re_replicate(self) -> int:
        """Restore replication for under-replicated blocks; returns count fixed.

        Mirrors the namenode's background re-replication after datanode loss.
        """
        fixed = 0
        with self._lock:
            for path, blocks in list(self._files.items()):
                new_blocks = []
                for block in blocks:
                    live = [
                        name
                        for name in block.replicas
                        if self._datanodes.get(name) is not None
                        and self._datanodes[name].alive
                        and block.block_id in self._datanodes[name].blocks
                    ]
                    if live and len(live) < self.replication:
                        data = self._datanodes[live[0]].blocks[block.block_id]
                        candidates = [
                            d.name
                            for d in self._datanodes.values()
                            if d.alive and d.name not in live
                        ]
                        needed = min(self.replication - len(live), len(candidates))
                        chosen = [str(c) for c in self._rng.choice(candidates, size=needed, replace=False)] if needed else []
                        for name in chosen:
                            self._datanodes[name].blocks[block.block_id] = data
                        block = BlockInfo(block.block_id, block.length, tuple(live + chosen))
                        fixed += 1 if chosen else 0
                    new_blocks.append(block)
                self._files[path] = new_blocks
        return fixed
