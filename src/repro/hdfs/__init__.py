"""A simulated Hadoop Distributed File System.

Provides the read path the paper's stage-0 cost comes from: files are
stored as replicated blocks on named datanodes; ``Context.text_file`` maps
one partition per block and uses the block's datanode hosts as locality
hints for the task scheduler.
"""

from repro.hdfs.filesystem import BlockInfo, FileStatus, MiniHDFS

__all__ = ["BlockInfo", "FileStatus", "MiniHDFS"]
