"""Cluster network topology (networkx) for transfer-cost estimation.

A simple two-level model: nodes hang off rack switches, racks hang off a
core switch.  Transfers within a node are free, within a rack pay the NIC
bandwidth, across racks pay the min of NIC and (oversubscribed) uplink.
The cost model uses :meth:`Topology.broadcast_seconds` and
:meth:`Topology.shuffle_seconds` as its network terms.
"""

from __future__ import annotations

import networkx as nx

from repro.cluster.nodes import ClusterSpec


class Topology:
    """A rack-aware star-of-stars network."""

    def __init__(
        self,
        cluster: ClusterSpec,
        nodes_per_rack: int = 20,
        uplink_oversubscription: float = 4.0,
    ) -> None:
        if nodes_per_rack < 1:
            raise ValueError("nodes_per_rack must be >= 1")
        if uplink_oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1")
        self.cluster = cluster
        self.nodes_per_rack = nodes_per_rack
        self.nic_gbps = cluster.instance.network_gbps
        self.uplink_gbps = self.nic_gbps * nodes_per_rack / uplink_oversubscription
        self.graph = nx.Graph()
        self.graph.add_node("core", kind="switch")
        n_racks = -(-cluster.n_nodes // nodes_per_rack)
        for r in range(n_racks):
            rack = f"rack-{r}"
            self.graph.add_node(rack, kind="switch")
            self.graph.add_edge("core", rack, gbps=self.uplink_gbps)
        for i in range(cluster.n_nodes):
            rack = f"rack-{i // nodes_per_rack}"
            node = f"node-{i}"
            self.graph.add_node(node, kind="host")
            self.graph.add_edge(rack, node, gbps=self.nic_gbps)

    @property
    def n_racks(self) -> int:
        return sum(1 for _, d in self.graph.nodes(data=True) if d["kind"] == "switch") - 1

    def rack_of(self, node_index: int) -> int:
        return node_index // self.nodes_per_rack

    def path_bandwidth_gbps(self, src: int, dst: int) -> float:
        """Bottleneck bandwidth between two hosts."""
        if src == dst:
            return float("inf")
        path = nx.shortest_path(self.graph, f"node-{src}", f"node-{dst}")
        gbps = min(
            self.graph.edges[a, b]["gbps"] for a, b in zip(path, path[1:])
        )
        return gbps

    def broadcast_seconds(self, payload_bytes: int) -> float:
        """Time to fan a driver payload out to every node (BitTorrent-ish:
        log2 rounds of NIC-limited transfers, as in Spark's TorrentBroadcast)."""
        import math

        n = self.cluster.n_nodes
        if n <= 1 or payload_bytes <= 0:
            return 0.0
        rounds = math.ceil(math.log2(n + 1))
        per_round = payload_bytes * 8 / (self.nic_gbps * 1e9)
        return rounds * per_round

    def shuffle_seconds(self, total_bytes: int) -> float:
        """All-to-all shuffle time, NIC-bound per node (uniform traffic)."""
        n = self.cluster.n_nodes
        if n <= 1 or total_bytes <= 0:
            return 0.0
        per_node = total_bytes / n
        # a fraction (n-1)/n of each node's data crosses its NIC
        cross = per_node * (n - 1) / n
        return cross * 8 / (self.nic_gbps * 1e9)
