"""EC2 instance and cluster specifications.

Table I of the paper describes the experimental hardware; it is encoded
here as :data:`M3_2XLARGE` and consumed by the YARN model and cost model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InstanceSpec:
    """One machine type."""

    name: str
    processor: str
    vcpus: int
    memory_gib: float
    storage_gb: float
    network_gbps: float = 1.0

    def __post_init__(self) -> None:
        if self.vcpus < 1 or self.memory_gib <= 0 or self.storage_gb < 0:
            raise ValueError("invalid instance spec")


#: Table I: the m3.2xlarge Amazon EC2 instance used in every experiment.
M3_2XLARGE = InstanceSpec(
    name="m3.2xlarge",
    processor="Intel Xeon E5-2670 v2 (Ivy Bridge)",
    vcpus=8,
    memory_gib=30.0,
    storage_gb=2 * 80.0,
    network_gbps=1.0,
)


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of ``n_nodes`` instances."""

    instance: InstanceSpec
    n_nodes: int

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("cluster needs at least one node")

    @property
    def total_vcpus(self) -> int:
        return self.instance.vcpus * self.n_nodes

    @property
    def total_memory_gib(self) -> float:
        return self.instance.memory_gib * self.n_nodes

    def __str__(self) -> str:
        return f"{self.n_nodes} x {self.instance.name}"


def emr_cluster(n_nodes: int) -> ClusterSpec:
    """The paper's EMR cluster shape at a given node count."""
    return ClusterSpec(M3_2XLARGE, n_nodes)
