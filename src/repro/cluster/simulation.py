"""Discrete-event simulation of stage/task execution on a slotted cluster.

The simulator schedules a DAG of barrier stages (Spark semantics: a stage
starts only when all parent stages finish) onto task slots.  Tasks are
placed greedily on the earliest-free slot; per-task launch overhead and a
lognormal straggler factor are applied.  This is the machinery that lets
the benchmarks replay the paper's workloads on 6/12/18/36 simulated nodes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np


@dataclass
class SimTask:
    """One task: pure compute seconds (overheads added by the simulator)."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be >= 0")


@dataclass
class SimStage:
    """A barrier stage: all tasks of all parents must finish first.

    ``launch_overhead`` is serial driver-side time before any task starts
    (stage scheduling, closure shipping, JIT on a cold stage).
    """

    stage_id: int
    tasks: list[SimTask]
    parent_ids: tuple[int, ...] = ()
    name: str = ""
    launch_overhead: float = 0.0


@dataclass
class StageReport:
    stage_id: int
    name: str
    start: float
    finish: float
    n_tasks: int

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class SimReport:
    """Simulation outcome."""

    makespan: float
    stages: list[StageReport] = field(default_factory=list)
    total_task_seconds: float = 0.0
    n_slots: int = 0

    @property
    def utilization(self) -> float:
        if self.makespan <= 0 or self.n_slots == 0:
            return 0.0
        return self.total_task_seconds / (self.makespan * self.n_slots)


class ClusterSimulator:
    """Greedy list scheduler over ``n_slots`` identical task slots."""

    def __init__(
        self,
        n_slots: int,
        task_overhead_s: float = 0.005,
        straggler_sigma: float = 0.0,
        seed: int = 0,
    ) -> None:
        if n_slots < 1:
            raise ValueError("need at least one slot")
        if task_overhead_s < 0 or straggler_sigma < 0:
            raise ValueError("overheads must be non-negative")
        self.n_slots = n_slots
        self.task_overhead_s = task_overhead_s
        self.straggler_sigma = straggler_sigma
        self._rng = np.random.default_rng(seed)

    def run(self, stages: list[SimStage], start_time: float = 0.0) -> SimReport:
        """Simulate the stage DAG; returns makespan and per-stage spans."""
        by_id = {s.stage_id: s for s in stages}
        finish_time: dict[int, float] = {}
        reports: list[StageReport] = []
        total_task_seconds = 0.0
        remaining = list(stages)
        # simple topological execution: repeatedly run stages whose parents
        # are done (stage count is small; O(n^2) is fine)
        while remaining:
            ready = [
                s
                for s in remaining
                if all(p in finish_time for p in s.parent_ids)
            ]
            if not ready:
                raise ValueError("stage graph has a cycle or missing parent")
            # earliest-ready stage first for determinism
            ready.sort(key=lambda s: s.stage_id)
            stage = ready[0]
            remaining.remove(stage)
            ready_at = max(
                [start_time] + [finish_time[p] for p in stage.parent_ids]
            )
            stage_start = ready_at
            ready_at += stage.launch_overhead
            total_task_seconds += stage.launch_overhead
            stage_finish = ready_at
            slots = [ready_at] * self.n_slots
            heapq.heapify(slots)
            for task in stage.tasks:
                slot_free = heapq.heappop(slots)
                begin = max(slot_free, ready_at)
                duration = task.duration
                if self.straggler_sigma > 0:
                    duration *= float(
                        self._rng.lognormal(mean=0.0, sigma=self.straggler_sigma)
                    )
                end = begin + self.task_overhead_s + duration
                total_task_seconds += self.task_overhead_s + duration
                heapq.heappush(slots, end)
                stage_finish = max(stage_finish, end)
            if not stage.tasks:
                stage_finish = ready_at
            finish_time[stage.stage_id] = stage_finish
            reports.append(
                StageReport(stage.stage_id, stage.name, stage_start, stage_finish, len(stage.tasks))
            )
        makespan = max((r.finish for r in reports), default=start_time) - start_time
        report = SimReport(
            makespan=makespan,
            stages=reports,
            total_task_seconds=total_task_seconds,
            n_slots=self.n_slots,
        )
        _ = by_id  # lookup table kept for future locality-aware scheduling
        return report


def even_tasks(total_work_seconds: float, n_tasks: int) -> list[SimTask]:
    """Split a stage's aggregate compute evenly into tasks."""
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    if total_work_seconds < 0:
        raise ValueError("work must be non-negative")
    per_task = total_work_seconds / n_tasks
    return [SimTask(per_task) for _ in range(n_tasks)]
