"""Cost model calibrated against the paper's published runtimes.

The constants below were fit to the paper's own tables (the derivation is
reproduced in EXPERIMENTS.md):

- **parse+score rate** (``parse_score_s_per_cell_core``): Experiment A runs
  Algorithm 1 over 100K SNPs x 1000 patients on 6 nodes (48 vCPUs) in
  509.4 s (Table III, 0 iterations); Experiment B covers 10K SNPs on 18
  nodes in 94 s (Table V).  Net of the ~60 s application startup and two
  ~10 s cold-stage launches, both imply ~2.0e-4 core-seconds per genotype
  cell -- slow in absolute terms (the JVM pipeline parses text and emits
  one record per SNP), but mutually consistent, so we adopt it.
- **Monte Carlo update rate** (``mc_update_s_per_cell_core``): Table III's
  MC column grows ~0.65 s per iteration at 100K x 1000 on 48 cores
  (3.1e-7 core-s/cell); Table V's cached column grows ~0.18 s per
  iteration at 10K x 1000 on 144 cores -- the same constant once the two
  ~0.08 s warm-stage launches per iteration are charged.
- **cached-object overhead** (``bytes_per_cached_double``): Spark 1.x
  stores deserialized Java objects; a boxed Double in a per-SNP list costs
  ~24 bytes.  With ~3 GiB of usable storage memory per node this is what
  makes the 1M-SNP U RDD (24 GB of objects) *fit* at 18 nodes but *thrash*
  at 6 -- the only reading under which Figure 6's two-orders-of-magnitude
  gap at 20 iterations is reproducible.

All rates are per-core; the simulator supplies slot counts and queueing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.nodes import ClusterSpec
from repro.cluster.topology import Topology


@dataclass(frozen=True)
class CostModel:
    """Calibrated cost constants for the SparkScore pipeline on EMR."""

    #: driver + executor + YARN application startup (seconds)
    app_startup_s: float = 60.0
    #: serial launch overhead of a stage that reads HDFS / runs first
    stage_cold_s: float = 10.0
    #: serial launch overhead of a warm, in-memory stage
    stage_warm_s: float = 0.08
    #: extra startup per container (Experiment C's knob)
    container_launch_s: float = 0.2
    #: per-task scheduling overhead charged by the simulator
    task_overhead_s: float = 0.005
    #: parse genotype text + compute score contributions, per cell per core
    parse_score_s_per_cell_core: float = 1.8e-4
    #: Monte Carlo multiplier update + square, per cell per core
    mc_update_s_per_cell_core: float = 2.2e-7
    #: join + per-set reduction, per SNP per core (both shuffle stages)
    aggregate_s_per_snp_core: float = 2.0e-6
    #: bytes of JVM-object storage per cached double (deserialized lists)
    bytes_per_cached_double: float = 24.0
    #: usable block-manager storage per node (GiB)
    cache_gib_per_node: float = 3.0
    #: bytes of genotype text per cell ("2," or "0\t...")
    text_bytes_per_cell: float = 2.0
    #: lognormal sigma for task stragglers
    straggler_sigma: float = 0.06

    # -- data sizes -----------------------------------------------------------

    def genotype_text_bytes(self, n_snps: int, n_patients: int) -> int:
        return int(n_snps * (n_patients * self.text_bytes_per_cell + 12))

    def contributions_cached_bytes(self, n_snps: int, n_patients: int) -> int:
        """JVM-object footprint of the cached U RDD."""
        return int(n_snps * n_patients * self.bytes_per_cached_double)

    def aggregate_cache_bytes(self, cluster: ClusterSpec) -> int:
        return int(cluster.n_nodes * self.cache_gib_per_node * 1024**3)

    def contributions_fit_in_cache(
        self, cluster: ClusterSpec, n_snps: int, n_patients: int
    ) -> bool:
        """Whether the cached U RDD fits in aggregate storage memory.

        A sequentially scanned working set that exceeds LRU capacity
        thrashes (every pass evicts what the next pass needs), so fit is
        modeled as all-or-nothing.
        """
        return (
            self.contributions_cached_bytes(n_snps, n_patients)
            <= self.aggregate_cache_bytes(cluster)
        )

    # -- stage work (core-seconds) ------------------------------------------------

    def parse_score_core_seconds(self, n_snps: int, n_patients: int) -> float:
        return n_snps * n_patients * self.parse_score_s_per_cell_core

    def mc_update_core_seconds(self, n_snps: int, n_patients: int) -> float:
        return n_snps * n_patients * self.mc_update_s_per_cell_core

    def aggregate_core_seconds(self, n_snps: int) -> float:
        return n_snps * self.aggregate_s_per_snp_core

    # -- network terms --------------------------------------------------------------

    def broadcast_seconds(self, cluster: ClusterSpec, payload_bytes: int) -> float:
        return Topology(cluster).broadcast_seconds(payload_bytes)

    def shuffle_seconds(self, cluster: ClusterSpec, total_bytes: int) -> float:
        return Topology(cluster).shuffle_seconds(total_bytes)

    def startup_seconds(self, num_containers: int) -> float:
        return self.app_startup_s + num_containers * self.container_launch_s
