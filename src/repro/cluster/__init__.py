"""Cluster substrate: instance specs, YARN container allocation, network
topology, and a discrete-event simulator with a cost model calibrated
against the paper's own tables (see EXPERIMENTS.md for the fit)."""

from repro.cluster.costmodel import CostModel
from repro.cluster.nodes import M3_2XLARGE, ClusterSpec, InstanceSpec
from repro.cluster.simulation import ClusterSimulator, SimReport, SimStage, SimTask
from repro.cluster.yarn import ContainerAllocation, ResourceManager

__all__ = [
    "ClusterSimulator",
    "ClusterSpec",
    "ContainerAllocation",
    "CostModel",
    "InstanceSpec",
    "M3_2XLARGE",
    "ResourceManager",
    "SimReport",
    "SimStage",
    "SimTask",
]
