"""YARN-style container allocation over a cluster.

Experiment C varies three Spark-on-YARN knobs: number of executors
(containers), memory per executor, and cores per executor (Tables VII and
VIII).  :class:`ResourceManager` validates a requested allocation against
node capacities and produces the per-node packing used by the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.nodes import ClusterSpec


class AllocationError(RuntimeError):
    """The requested containers do not fit on the cluster."""


@dataclass(frozen=True)
class ContainerAllocation:
    """A validated container layout."""

    cluster: ClusterSpec
    num_containers: int
    memory_per_container_gib: float
    cores_per_container: int
    #: containers packed on each node (len == n_nodes)
    per_node: tuple[int, ...]

    @property
    def total_cores(self) -> int:
        return self.num_containers * self.cores_per_container

    @property
    def total_memory_gib(self) -> float:
        return self.num_containers * self.memory_per_container_gib

    def slot_hosts(self) -> list[str]:
        """One entry per task slot, naming its host (simulator input)."""
        slots = []
        for node_idx, count in enumerate(self.per_node):
            for _ in range(count * self.cores_per_container):
                slots.append(f"node-{node_idx}")
        return slots

    def __str__(self) -> str:
        return (
            f"{self.num_containers} containers x ({self.cores_per_container} cores, "
            f"{self.memory_per_container_gib:g} GiB) on {self.cluster}"
        )


class ResourceManager:
    """Validates and packs container requests (capacity scheduler, breadth-first).

    ``strict_cores=False`` (the default) mirrors YARN's
    ``DefaultResourceCalculator``, which schedules containers by memory
    only and lets vcores oversubscribe -- this is how the paper's 42
    six-core containers fit on 36 eight-vCPU nodes (Tables VII/VIII).
    """

    #: fraction of node memory YARN hands out (OS + daemons reserve the rest)
    USABLE_MEMORY_FRACTION = 0.9
    #: cores YARN keeps for the node manager / OS
    RESERVED_CORES = 1

    def __init__(self, cluster: ClusterSpec, strict_cores: bool = False) -> None:
        self.cluster = cluster
        self.strict_cores = strict_cores

    @property
    def usable_cores_per_node(self) -> int:
        return max(1, self.cluster.instance.vcpus - self.RESERVED_CORES)

    @property
    def usable_memory_per_node_gib(self) -> float:
        return self.cluster.instance.memory_gib * self.USABLE_MEMORY_FRACTION

    def allocate(
        self,
        num_containers: int,
        memory_per_container_gib: float,
        cores_per_container: int,
    ) -> ContainerAllocation:
        """Pack containers breadth-first across nodes; raise if infeasible."""
        if num_containers < 1 or cores_per_container < 1 or memory_per_container_gib <= 0:
            raise AllocationError("container shape must be positive")
        n = self.cluster.n_nodes
        per_node_mem_cap = int(self.usable_memory_per_node_gib // memory_per_container_gib)
        if self.strict_cores:
            per_node_core_cap = self.usable_cores_per_node // cores_per_container
            per_node_cap = min(per_node_core_cap, per_node_mem_cap)
        else:
            per_node_cap = per_node_mem_cap
        if per_node_cap < 1:
            raise AllocationError(
                f"a ({cores_per_container} core, {memory_per_container_gib:g} GiB) container "
                f"does not fit on a {self.cluster.instance.name}"
            )
        if per_node_cap * n < num_containers:
            raise AllocationError(
                f"{num_containers} containers exceed cluster capacity "
                f"({per_node_cap}/node x {n} nodes)"
            )
        per_node = [num_containers // n] * n
        for i in range(num_containers % n):
            per_node[i] += 1
        if max(per_node) > per_node_cap:
            raise AllocationError("uneven packing exceeds per-node capacity")
        return ContainerAllocation(
            cluster=self.cluster,
            num_containers=num_containers,
            memory_per_container_gib=memory_per_container_gib,
            cores_per_container=cores_per_container,
            per_node=tuple(per_node),
        )

    def default_allocation(self) -> ContainerAllocation:
        """One executor per node using all usable cores (EMR-ish default)."""
        cores = self.usable_cores_per_node
        memory = self.usable_memory_per_node_gib * 0.5  # half to executors, half to OS cache etc.
        return self.allocate(self.cluster.n_nodes, memory, cores)
