"""SparkScore reproduction: distributed genomic inference on a mini-Spark engine.

This package reproduces *SparkScore: Leveraging Apache Spark for Distributed
Genomic Inference* (Bahmani et al., IPDPSW 2016).  It contains

- :mod:`repro.engine` -- a from-scratch Spark-like execution engine (lazy
  RDDs, DAG scheduler, shuffle, caching, broadcast, fault tolerance);
- :mod:`repro.hdfs` -- a simulated block filesystem;
- :mod:`repro.cluster` -- node/YARN models and a discrete-event cluster
  simulator with a calibrated cost model;
- :mod:`repro.stats` -- efficient score statistics (Cox, binomial,
  Gaussian), SKAT aggregation, permutation and Monte Carlo resampling,
  asymptotic approximations, and the Wald/LRT comparator;
- :mod:`repro.genomics` -- SNP/gene data model, file formats, and the
  paper's synthetic data generator;
- :mod:`repro.core` -- the SparkScore algorithms (Algorithms 1-3) and the
  high-level analysis API;
- :mod:`repro.bench` -- the experiment registry and harness used by the
  ``benchmarks/`` suite to regenerate every table and figure.

Quickstart::

    from repro import SparkScoreAnalysis, SyntheticConfig, generate_dataset

    data = generate_dataset(SyntheticConfig(n_patients=200, n_snps=500,
                                            n_snpsets=20, seed=7))
    analysis = SparkScoreAnalysis.from_dataset(data)
    result = analysis.monte_carlo(iterations=1000, seed=11)
    print(result.top(5))
"""

from repro.config import EngineConfig
from repro.core.results import ResamplingResult, SnpSetResult
from repro.core.sparkscore import SparkScoreAnalysis
from repro.genomics.synthetic import SyntheticConfig, generate_dataset

__version__ = "1.0.0"

__all__ = [
    "EngineConfig",
    "ResamplingResult",
    "SnpSetResult",
    "SparkScoreAnalysis",
    "SyntheticConfig",
    "generate_dataset",
    "__version__",
]
