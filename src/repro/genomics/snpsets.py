"""SNP-set (gene/pathway) partitions of the SNPs.

The paper analyzes a *partition*: each SNP belongs to exactly one set
``I_k``, and "the SNP-set K is augmented by the SNPs not picked by SNP-sets
1 through K-1" so every SNP's computation is accounted for.  The partition
is stored as a ``set_ids`` vector over SNP row indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.genomics.variants import Gene, Snp


@dataclass
class SnpSetCollection:
    """A partition of SNP rows into K named sets."""

    set_ids: np.ndarray  # (J,) set index per SNP row
    names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        ids = np.asarray(self.set_ids)
        if ids.ndim != 1:
            raise ValueError("set_ids must be a vector")
        if not np.issubdtype(ids.dtype, np.integer):
            raise TypeError("set_ids must be integers")
        if ids.size and ids.min() < 0:
            raise ValueError("set ids must be non-negative")
        self.set_ids = ids.astype(np.int64)
        k = int(ids.max()) + 1 if ids.size else 0
        if not self.names:
            self.names = [f"set{k_idx:05d}" for k_idx in range(k)]
        if len(self.names) < k:
            raise ValueError(f"{k} sets referenced but only {len(self.names)} names")

    @property
    def n_sets(self) -> int:
        return len(self.names)

    @property
    def n_snps(self) -> int:
        return self.set_ids.shape[0]

    def members(self, k: int) -> np.ndarray:
        """SNP row indices belonging to set ``k``."""
        if not 0 <= k < self.n_sets:
            raise IndexError(f"set index {k} out of range")
        return np.flatnonzero(self.set_ids == k)

    def sizes(self) -> np.ndarray:
        return np.bincount(self.set_ids, minlength=self.n_sets)

    def as_lists(self, snp_ids: np.ndarray) -> dict[str, list[int]]:
        """{set name: [snp ids]} -- the SNP-set text-file payload."""
        out: dict[str, list[int]] = {name: [] for name in self.names}
        for row, k in enumerate(self.set_ids):
            out[self.names[k]].append(int(snp_ids[row]))
        return out

    @classmethod
    def from_lists(
        cls, snp_ids: np.ndarray, sets: dict[str, list[int]]
    ) -> "SnpSetCollection":
        """Build from {name: [snp ids]}; every SNP must appear exactly once."""
        index_of = {int(s): i for i, s in enumerate(snp_ids)}
        set_ids = np.full(len(snp_ids), -1, dtype=np.int64)
        names = list(sets)
        for k, name in enumerate(names):
            for snp in sets[name]:
                row = index_of.get(int(snp))
                if row is None:
                    raise ValueError(f"set {name!r} references unknown SNP {snp}")
                if set_ids[row] != -1:
                    raise ValueError(f"SNP {snp} appears in more than one set")
                set_ids[row] = k
        if np.any(set_ids == -1):
            missing = snp_ids[set_ids == -1][:5]
            raise ValueError(f"SNPs not covered by any set (e.g. {missing.tolist()})")
        return cls(set_ids, names)

    @classmethod
    def from_genes(cls, snps: list[Snp], genes: list[Gene]) -> "SnpSetCollection":
        """Assign each SNP to the first gene containing it.

        SNPs outside every gene go to a trailing "intergenic" set, mirroring
        the paper's augmentation of the last set.
        """
        set_ids = np.full(len(snps), -1, dtype=np.int64)
        for row, snp in enumerate(snps):
            for k, gene in enumerate(genes):
                if gene.contains(snp):
                    set_ids[row] = k
                    break
        names = [g.label for g in genes]
        if np.any(set_ids == -1):
            names = names + ["intergenic"]
            set_ids[set_ids == -1] = len(names) - 1
        return cls(set_ids, names)
