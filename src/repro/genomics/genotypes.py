"""SNP-major genotype matrix container."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass
class GenotypeMatrix:
    """Genotypes for J SNPs x n patients, stored SNP-major as int8 (0/1/2).

    SNP-major layout matches the distribution axis: SparkScore partitions
    work by SNP, and each RDD record carries one SNP's patient vector.
    """

    snp_ids: np.ndarray  # (J,) integer SNP identifiers
    matrix: np.ndarray  # (J, n) int8 genotype dosages

    def __post_init__(self) -> None:
        self.snp_ids = np.asarray(self.snp_ids)
        self.matrix = np.asarray(self.matrix)
        if self.matrix.ndim != 2:
            raise ValueError("matrix must be 2-D (SNPs x patients)")
        if self.snp_ids.shape != (self.matrix.shape[0],):
            raise ValueError("snp_ids must align with matrix rows")
        if not np.issubdtype(self.snp_ids.dtype, np.integer):
            raise TypeError("snp_ids must be integers")
        if self.matrix.dtype != np.int8:
            values = np.asarray(self.matrix)
            if values.size and (values.min() < -128 or values.max() > 127):
                raise ValueError("genotype dosages out of int8 range")
            self.matrix = values.astype(np.int8)
        if self.matrix.size and (self.matrix.min() < 0 or self.matrix.max() > 2):
            raise ValueError("genotype dosages must be 0, 1, or 2")
        if len(np.unique(self.snp_ids)) != len(self.snp_ids):
            raise ValueError("snp_ids must be unique")

    @property
    def n_snps(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_patients(self) -> int:
        return self.matrix.shape[1]

    @property
    def nbytes(self) -> int:
        return int(self.matrix.nbytes + self.snp_ids.nbytes)

    def minor_allele_frequencies(self) -> np.ndarray:
        freq = self.matrix.mean(axis=1, dtype=np.float64) / 2.0
        return np.minimum(freq, 1.0 - freq)

    def allele_frequencies(self) -> np.ndarray:
        """Raw alternate-allele frequencies (the generator's rho_j)."""
        return self.matrix.mean(axis=1, dtype=np.float64) / 2.0

    def rows(self) -> Iterator[tuple[int, np.ndarray]]:
        """(snp_id, genotype vector) records -- Algorithm 1's GM RDD shape."""
        for j in range(self.n_snps):
            yield int(self.snp_ids[j]), self.matrix[j]

    def blocks(self, block_size: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """(ids, sub-matrix) chunks for the vectorized algorithm flavor."""
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        for start in range(0, self.n_snps, block_size):
            end = min(self.n_snps, start + block_size)
            yield self.snp_ids[start:end], self.matrix[start:end]

    def subset(self, row_indices: np.ndarray) -> "GenotypeMatrix":
        return GenotypeMatrix(self.snp_ids[row_indices], self.matrix[row_indices])

    def __repr__(self) -> str:
        return f"GenotypeMatrix({self.n_snps} SNPs x {self.n_patients} patients)"
