"""SNP and gene coordinate types.

Paper, Section II: "A SNP is typically represented as a pair (chr, pos)
... A gene can be represented as a triplet (chr, start, end)".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Snp:
    """A single-nucleotide polymorphism locus."""

    chrom: str
    pos: int
    snp_id: str = ""

    def __post_init__(self) -> None:
        if self.pos < 0:
            raise ValueError("position must be non-negative")
        if not self.chrom:
            raise ValueError("chromosome must be non-empty")

    @property
    def label(self) -> str:
        return self.snp_id or f"{self.chrom}:{self.pos}"


@dataclass(frozen=True, order=True)
class Gene:
    """A gene region: (chr, start, end), inclusive of both endpoints."""

    chrom: str
    start: int
    end: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid gene interval [{self.start}, {self.end}]")

    def contains(self, snp: Snp) -> bool:
        """Whether the SNP's position lies within this gene."""
        return snp.chrom == self.chrom and self.start <= snp.pos <= self.end

    @property
    def length(self) -> int:
        return self.end - self.start + 1

    @property
    def label(self) -> str:
        return self.name or f"{self.chrom}:{self.start}-{self.end}"
