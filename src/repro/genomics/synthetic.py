"""Synthetic data generation, following the paper's Section III exactly.

- Survival time ``Y_i ~ Exponential(rate 1/12)`` (mean 12 months).
- Event indicator ``Delta_i ~ Bernoulli(0.85)`` (85% event rate), applied
  arbitrarily (independently of the time, as the paper notes).
- Genotypes ``G_ij ~ Binomial(2, rho_j)`` with the relative allelic
  frequency ``rho_j`` varied across SNPs.
- SNP-set sizes drawn from ``Exponential(mean m/K)``, rounded down to the
  nearest integer (up to 1 when in (0, 1)); the last set is augmented with
  every SNP not picked by sets 1..K-1 so all SNPs' computation is counted.

An optional ``n_causal``/``effect_size`` extension plants true
associations (absent from the paper, which only measures runtimes) so the
examples can demonstrate statistical power, not just speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.genomics.genotypes import GenotypeMatrix
from repro.genomics.snpsets import SnpSetCollection
from repro.stats.score.base import SurvivalPhenotype


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the Section III generator (paper defaults)."""

    n_patients: int = 1000
    n_snps: int = 100_000
    n_snpsets: int = 1000
    mean_survival_months: float = 12.0
    event_rate: float = 0.85
    #: allelic frequency range rho_j is drawn uniformly from
    maf_range: tuple[float, float] = (0.05, 0.5)
    seed: int = 0
    #: optional planted signal (0 = pure null, as in the paper)
    n_causal_snps: int = 0
    #: log hazard ratio per allele for causal SNPs
    effect_size: float = 0.0

    def __post_init__(self) -> None:
        if self.n_patients < 2:
            raise ValueError("need at least 2 patients")
        if self.n_snps < 1:
            raise ValueError("need at least 1 SNP")
        if not 1 <= self.n_snpsets <= self.n_snps:
            raise ValueError("n_snpsets must be in [1, n_snps]")
        if self.mean_survival_months <= 0:
            raise ValueError("mean survival must be positive")
        if not 0.0 <= self.event_rate <= 1.0:
            raise ValueError("event_rate must be in [0, 1]")
        lo, hi = self.maf_range
        if not 0.0 < lo <= hi < 1.0:
            raise ValueError("maf_range must satisfy 0 < lo <= hi < 1")
        if self.n_causal_snps < 0 or self.n_causal_snps > self.n_snps:
            raise ValueError("n_causal_snps out of range")


@dataclass
class Dataset:
    """A complete analysis input: genotypes, phenotype, weights, sets."""

    genotypes: GenotypeMatrix
    phenotype: SurvivalPhenotype
    weights: np.ndarray  # (J,) per-SNP weights omega_j
    snpsets: SnpSetCollection
    causal_rows: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    def __post_init__(self) -> None:
        J = self.genotypes.n_snps
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if self.weights.shape != (J,):
            raise ValueError("weights must have one entry per SNP")
        if np.any(self.weights < 0):
            raise ValueError("weights must be non-negative")
        if self.snpsets.n_snps != J:
            raise ValueError("snpsets must cover every SNP row")
        if self.genotypes.n_patients != self.phenotype.n:
            raise ValueError("phenotype length must match genotype columns")

    @property
    def n_snps(self) -> int:
        return self.genotypes.n_snps

    @property
    def n_patients(self) -> int:
        return self.genotypes.n_patients

    @property
    def n_sets(self) -> int:
        return self.snpsets.n_sets


def snpset_size_partition(
    n_snps: int, n_snpsets: int, rng: np.random.Generator
) -> np.ndarray:
    """Section III's SNP-set assignment; returns the set_ids vector.

    Sizes for sets 1..K are drawn from Exponential(mean m/K) and floored
    (minimum 1); sets are filled with consecutive SNPs until either the
    SNPs or the sets run out, and the final set absorbs the remainder.
    """
    mean_size = n_snps / n_snpsets
    set_ids = np.empty(n_snps, dtype=np.int64)
    cursor = 0
    for k in range(n_snpsets):
        remaining_sets = n_snpsets - k
        remaining_snps = n_snps - cursor
        if remaining_snps <= 0:
            # out of SNPs: leftover sets stay empty; map them onto last id
            break
        if k == n_snpsets - 1:
            size = remaining_snps  # augmentation rule
        else:
            raw = rng.exponential(mean_size)
            size = max(1, int(raw))
            # never starve the remaining sets below 1 SNP each
            size = min(size, remaining_snps - (remaining_sets - 1))
            size = max(1, size)
        set_ids[cursor : cursor + size] = k
        cursor += size
    if cursor < n_snps:
        set_ids[cursor:] = n_snpsets - 1
    return set_ids


def generate_dataset(config: SyntheticConfig) -> Dataset:
    """Generate a full synthetic dataset per Section III."""
    rng = np.random.default_rng(config.seed)
    n, m = config.n_patients, config.n_snps

    rho = rng.uniform(*config.maf_range, size=m)
    genotype_values = rng.binomial(2, rho[:, None], size=(m, n)).astype(np.int8)
    snp_ids = np.arange(m, dtype=np.int64)
    genotypes = GenotypeMatrix(snp_ids, genotype_values)

    causal_rows = np.empty(0, dtype=np.int64)
    if config.n_causal_snps > 0 and config.effect_size != 0.0:
        causal_rows = rng.choice(m, size=config.n_causal_snps, replace=False)
        causal_rows.sort()
        # proportional-hazards signal: rate_i = base * exp(beta * sum G)
        linear = config.effect_size * genotype_values[causal_rows].sum(axis=0)
        rates = np.exp(linear) / config.mean_survival_months
        times = rng.exponential(1.0 / rates)
    else:
        times = rng.exponential(config.mean_survival_months, size=n)
    events = rng.binomial(1, config.event_rate, size=n)
    phenotype = SurvivalPhenotype(times, events)

    weights = np.ones(m)
    set_ids = snpset_size_partition(m, config.n_snpsets, rng)
    snpsets = SnpSetCollection(set_ids)

    return Dataset(genotypes, phenotype, weights, snpsets, causal_rows)
