"""Line-level (de)serialization for the four SparkScore input files.

These functions are deliberately tiny and dependency-free on the write
side; the genotype parser returns a NumPy vector because it doubles as the
map function of the engine's parse stage (Algorithm 1, step 3).
"""

from __future__ import annotations

import numpy as np


class FormatError(ValueError):
    """A malformed input line."""


# -- genotype matrix ----------------------------------------------------------


def format_genotype_line(snp_id: int, genotypes: np.ndarray) -> str:
    return f"{int(snp_id)}\t{','.join(str(int(g)) for g in genotypes)}"


def parse_genotype_line(line: str) -> tuple[int, np.ndarray]:
    try:
        snp_field, values_field = line.split("\t", 1)
        snp_id = int(snp_field)
        tokens = values_field.split(",")
        values = np.fromiter((int(t) for t in tokens), dtype=np.int8, count=len(tokens))
    except ValueError as exc:
        raise FormatError(f"bad genotype line {line[:80]!r}: {exc}") from exc
    return snp_id, values


# -- phenotype pairs ------------------------------------------------------------


def format_phenotype_line(patient_index: int, time: float, event: int) -> str:
    return f"{int(patient_index)}\t{time!r}\t{int(event)}"


def parse_phenotype_line(line: str) -> tuple[int, float, int]:
    try:
        idx_field, time_field, event_field = line.split("\t")
        idx, time, event = int(idx_field), float(time_field), int(event_field)
        if event not in (0, 1):
            raise ValueError(f"event must be 0/1, got {event}")
        if time < 0:
            raise ValueError("negative time")
    except ValueError as exc:
        raise FormatError(f"bad phenotype line {line[:80]!r}: {exc}") from exc
    return idx, time, event


# -- weights ----------------------------------------------------------------------


def format_weight_line(snp_id: int, weight: float) -> str:
    return f"{int(snp_id)}\t{weight!r}"


def parse_weight_line(line: str) -> tuple[int, float]:
    try:
        snp_field, weight_field = line.split("\t")
        snp_id, weight = int(snp_field), float(weight_field)
        if weight < 0:
            raise ValueError("negative weight")
    except ValueError as exc:
        raise FormatError(f"bad weight line {line[:80]!r}: {exc}") from exc
    return snp_id, weight


# -- SNP-sets ----------------------------------------------------------------------


def format_snpset_line(name: str, snp_ids: list[int]) -> str:
    if "\t" in name:
        raise FormatError("set name may not contain a tab")
    return f"{name}\t{','.join(str(int(s)) for s in snp_ids)}"


def parse_snpset_line(line: str) -> tuple[str, list[int]]:
    try:
        name, ids_field = line.split("\t", 1)
        ids = [int(tok) for tok in ids_field.split(",") if tok.strip()]
    except ValueError as exc:
        raise FormatError(f"bad SNP-set line {line[:80]!r}: {exc}") from exc
    return name, ids
