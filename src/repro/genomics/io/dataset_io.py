"""Whole-dataset round trips against a local directory or MiniHDFS."""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

import numpy as np

from repro.genomics.genotypes import GenotypeMatrix
from repro.genomics.io.formats import (
    format_genotype_line,
    format_phenotype_line,
    format_snpset_line,
    format_weight_line,
    parse_genotype_line,
    parse_phenotype_line,
    parse_snpset_line,
    parse_weight_line,
)
from repro.genomics.snpsets import SnpSetCollection
from repro.genomics.synthetic import Dataset
from repro.stats.score.base import SurvivalPhenotype

if TYPE_CHECKING:  # pragma: no cover
    from repro.hdfs.filesystem import MiniHDFS

GENOTYPES_FILE = "genotypes.txt"
PHENOTYPE_FILE = "phenotype.txt"
WEIGHTS_FILE = "weights.txt"
SNPSETS_FILE = "snpsets.txt"


def _write_file(base: str, name: str, content: str, hdfs: "MiniHDFS | None") -> str:
    if hdfs is not None:
        path = f"{base.rstrip('/')}/{name}"
        hdfs.write_text(path, content)
        return f"hdfs://{path.lstrip('/')}" if not path.startswith("hdfs://") else path
    os.makedirs(base, exist_ok=True)
    path = os.path.join(base, name)
    with open(path, "w") as fh:
        fh.write(content)
    return path


def _read_lines(base: str, name: str, hdfs: "MiniHDFS | None") -> list[str]:
    if hdfs is not None:
        return hdfs.read_text(f"{base.rstrip('/')}/{name}").splitlines()
    with open(os.path.join(base, name)) as fh:
        return fh.read().splitlines()


def write_dataset(dataset: Dataset, base: str, hdfs: "MiniHDFS | None" = None) -> dict[str, str]:
    """Serialize all four input files; returns {kind: path}."""
    genotype_lines = [
        format_genotype_line(snp_id, row) for snp_id, row in dataset.genotypes.rows()
    ]
    phenotype_lines = [
        format_phenotype_line(i, float(t), int(e))
        for i, (t, e) in enumerate(zip(dataset.phenotype.time, dataset.phenotype.event))
    ]
    weight_lines = [
        format_weight_line(int(snp_id), float(w))
        for snp_id, w in zip(dataset.genotypes.snp_ids, dataset.weights)
    ]
    set_lists = dataset.snpsets.as_lists(dataset.genotypes.snp_ids)
    snpset_lines = [format_snpset_line(name, ids) for name, ids in set_lists.items()]
    return {
        "genotypes": _write_file(base, GENOTYPES_FILE, "\n".join(genotype_lines) + "\n", hdfs),
        "phenotype": _write_file(base, PHENOTYPE_FILE, "\n".join(phenotype_lines) + "\n", hdfs),
        "weights": _write_file(base, WEIGHTS_FILE, "\n".join(weight_lines) + "\n", hdfs),
        "snpsets": _write_file(base, SNPSETS_FILE, "\n".join(snpset_lines) + "\n", hdfs),
    }


def read_dataset(base: str, hdfs: "MiniHDFS | None" = None) -> Dataset:
    """Load a dataset previously written by :func:`write_dataset`."""
    genotype_rows = [parse_genotype_line(l) for l in _read_lines(base, GENOTYPES_FILE, hdfs) if l]
    if not genotype_rows:
        raise ValueError("empty genotype file")
    snp_ids = np.array([snp_id for snp_id, _ in genotype_rows], dtype=np.int64)
    matrix = np.vstack([row for _, row in genotype_rows])
    genotypes = GenotypeMatrix(snp_ids, matrix)

    phenotype_rows = sorted(
        parse_phenotype_line(l) for l in _read_lines(base, PHENOTYPE_FILE, hdfs) if l
    )
    times = np.array([t for _, t, _ in phenotype_rows])
    events = np.array([e for _, _, e in phenotype_rows])
    phenotype = SurvivalPhenotype(times, events)

    weight_map = dict(parse_weight_line(l) for l in _read_lines(base, WEIGHTS_FILE, hdfs) if l)
    try:
        weights = np.array([weight_map[int(s)] for s in snp_ids])
    except KeyError as exc:
        raise ValueError(f"weights file missing SNP {exc}") from exc

    sets = dict(parse_snpset_line(l) for l in _read_lines(base, SNPSETS_FILE, hdfs) if l)
    snpsets = SnpSetCollection.from_lists(snp_ids, sets)
    return Dataset(genotypes, phenotype, weights, snpsets)
