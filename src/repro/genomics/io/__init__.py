"""Text file formats for SparkScore inputs.

Four files, mirroring Algorithm 1's inputs:

- genotype matrix: ``<snp_id>\\t<g_1>,<g_2>,...,<g_n>``
- phenotype pairs: ``<patient_index>\\t<time>\\t<event>``
- SNP weights:     ``<snp_id>\\t<weight>``
- SNP-sets:        ``<set_name>\\t<snp_id_1>,<snp_id_2>,...``

Line-level parse/format functions live in :mod:`repro.genomics.io.formats`
(they are also the map functions of the engine's parse stage); whole-dataset
round trips in :mod:`repro.genomics.io.dataset_io` work against either a
local directory or a :class:`~repro.hdfs.filesystem.MiniHDFS`.
"""

from repro.genomics.io.dataset_io import read_dataset, write_dataset
from repro.genomics.io.formats import (
    format_genotype_line,
    format_phenotype_line,
    format_snpset_line,
    format_weight_line,
    parse_genotype_line,
    parse_phenotype_line,
    parse_snpset_line,
    parse_weight_line,
)

__all__ = [
    "format_genotype_line",
    "format_phenotype_line",
    "format_snpset_line",
    "format_weight_line",
    "parse_genotype_line",
    "parse_phenotype_line",
    "parse_snpset_line",
    "parse_weight_line",
    "read_dataset",
    "write_dataset",
]
