"""Minimal VCF reader/writer (dosage extraction for association testing).

Supports the subset of VCF 4.x that association pipelines consume: the
``#CHROM`` header for sample names, per-site rows with a ``GT`` entry in
FORMAT, and diploid genotypes (``0/0``, ``0|1``, ``1/1``, ``./.``).
Multi-allelic sites count any non-reference allele toward the dosage.
Missing genotypes are imputed to the site's rounded mean dosage (the
standard simple imputation for score tests; sites that are entirely
missing become all-zero).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.genomics.genotypes import GenotypeMatrix
from repro.genomics.variants import Snp


class VcfError(ValueError):
    """Malformed VCF content."""


@dataclass
class VcfData:
    """Parsed VCF payload."""

    snps: list[Snp]
    samples: list[str]
    genotypes: GenotypeMatrix
    #: count of imputed (missing) genotype calls
    n_imputed: int


_FIXED_COLUMNS = ("#CHROM", "POS", "ID", "REF", "ALT", "QUAL", "FILTER", "INFO", "FORMAT")


def _parse_gt(token: str) -> int | None:
    """Dosage from a GT token; None for missing."""
    gt = token.split(":", 1)[0]
    alleles = gt.replace("|", "/").split("/")
    if not alleles or any(a == "." for a in alleles):
        return None
    try:
        return sum(1 for a in alleles if int(a) > 0)
    except ValueError as exc:
        raise VcfError(f"bad GT token {token!r}") from exc


def parse_vcf(lines) -> VcfData:
    """Parse VCF text (iterable of lines) into a :class:`VcfData`."""
    samples: list[str] | None = None
    snps: list[Snp] = []
    rows: list[np.ndarray] = []
    n_imputed = 0
    for lineno, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        if not line or line.startswith("##"):
            continue
        if line.startswith("#CHROM"):
            fields = line.split("\t")
            if tuple(fields[:9]) != _FIXED_COLUMNS:
                raise VcfError(f"line {lineno}: malformed #CHROM header")
            samples = fields[9:]
            if not samples:
                raise VcfError("VCF has no sample columns")
            continue
        if samples is None:
            raise VcfError(f"line {lineno}: data row before #CHROM header")
        fields = line.split("\t")
        if len(fields) != 9 + len(samples):
            raise VcfError(
                f"line {lineno}: expected {9 + len(samples)} columns, got {len(fields)}"
            )
        chrom, pos, snp_id, _ref, _alt, _qual, _filt, _info, fmt = fields[:9]
        fmt_keys = fmt.split(":")
        if "GT" not in fmt_keys:
            raise VcfError(f"line {lineno}: FORMAT lacks GT")
        if fmt_keys[0] != "GT":
            # GT may appear later in FORMAT; re-slice each sample token
            gt_index = fmt_keys.index("GT")
            tokens = [f.split(":")[gt_index] for f in fields[9:]]
        else:
            tokens = fields[9:]
        try:
            position = int(pos)
        except ValueError as exc:
            raise VcfError(f"line {lineno}: bad POS {pos!r}") from exc
        dosages = [_parse_gt(tok) for tok in tokens]
        known = [d for d in dosages if d is not None]
        fill = int(round(float(np.mean(known)))) if known else 0
        row = np.array([fill if d is None else d for d in dosages], dtype=np.int8)
        n_imputed += sum(1 for d in dosages if d is None)
        snps.append(Snp(chrom, position, "" if snp_id == "." else snp_id))
        rows.append(row)
    if samples is None:
        raise VcfError("no #CHROM header found")
    if not rows:
        raise VcfError("VCF has no variant rows")
    matrix = np.vstack(rows)
    genotypes = GenotypeMatrix(np.arange(len(snps), dtype=np.int64), matrix)
    return VcfData(snps=snps, samples=samples, genotypes=genotypes, n_imputed=n_imputed)


def read_vcf(path: str, hdfs=None) -> VcfData:
    """Read a VCF from the local filesystem or a MiniHDFS."""
    if hdfs is not None:
        return parse_vcf(hdfs.read_text(path).splitlines())
    with open(path) as fh:
        return parse_vcf(fh)


def write_vcf(
    genotypes: GenotypeMatrix,
    snps: list[Snp],
    samples: list[str],
    path: str,
    hdfs=None,
) -> None:
    """Write dosages back out as a minimal GT-only VCF."""
    if len(snps) != genotypes.n_snps:
        raise ValueError("snps must align with genotype rows")
    if len(samples) != genotypes.n_patients:
        raise ValueError("samples must align with genotype columns")
    gt_of = {0: "0/0", 1: "0/1", 2: "1/1"}
    lines = ["##fileformat=VCFv4.2", "\t".join(_FIXED_COLUMNS + tuple(samples))]
    for snp, row in zip(snps, genotypes.matrix):
        tokens = [gt_of[int(g)] for g in row]
        lines.append(
            "\t".join(
                [snp.chrom, str(snp.pos), snp.snp_id or ".", "A", "G", ".", "PASS", ".", "GT"]
                + tokens
            )
        )
    content = "\n".join(lines) + "\n"
    if hdfs is not None:
        hdfs.write_text(path, content)
    else:
        with open(path, "w") as fh:
            fh.write(content)
