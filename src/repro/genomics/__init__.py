"""Genomic data model: SNPs, genes, SNP-sets, genotype matrices, file I/O,
and the paper's synthetic data generator (Section III)."""

from repro.genomics.genotypes import GenotypeMatrix
from repro.genomics.snpsets import SnpSetCollection
from repro.genomics.synthetic import Dataset, SyntheticConfig, generate_dataset
from repro.genomics.variants import Gene, Snp

__all__ = [
    "Dataset",
    "Gene",
    "GenotypeMatrix",
    "Snp",
    "SnpSetCollection",
    "SyntheticConfig",
    "generate_dataset",
]
