"""Genotype quality control: the standard pre-analysis filters.

Real GWAS pipelines (the studies cited in the paper's introduction) filter
variants before testing: minor-allele-frequency floors, call-rate
(missingness) ceilings, and Hardy-Weinberg-equilibrium checks.  The
synthetic generator produces clean data, but the VCF path can carry
imputed/missing calls, and downstream users will bring real matrices --
so the filters live here as first-class, tested operations.

All filters operate on SNP-major (m, n) dosage matrices and return
boolean keep-masks so they compose: ``keep = maf & hwe & call_rate``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps


def maf_filter(genotypes: np.ndarray, min_maf: float = 0.01) -> np.ndarray:
    """Keep SNPs whose folded minor-allele frequency is >= ``min_maf``."""
    if not 0.0 <= min_maf <= 0.5:
        raise ValueError("min_maf must be in [0, 0.5]")
    G = _check(genotypes)
    freq = G.mean(axis=1) / 2.0
    maf = np.minimum(freq, 1.0 - freq)
    return maf >= min_maf


def call_rate_filter(
    genotypes: np.ndarray, missing_code: int = -1, min_call_rate: float = 0.95
) -> np.ndarray:
    """Keep SNPs with a fraction >= ``min_call_rate`` of non-missing calls.

    Matrices produced by :mod:`repro.genomics.io.vcf` are already imputed;
    this filter serves pipelines that keep an explicit missing code.
    """
    if not 0.0 <= min_call_rate <= 1.0:
        raise ValueError("min_call_rate must be in [0, 1]")
    G = np.asarray(genotypes)
    if G.ndim != 2:
        raise ValueError("genotypes must be (m, n)")
    called = (G != missing_code).mean(axis=1)
    return called >= min_call_rate


def hwe_pvalues(genotypes: np.ndarray) -> np.ndarray:
    """Hardy-Weinberg equilibrium chi-square (1 df) p-value per SNP.

    Compares observed genotype counts (n0, n1, n2) against the
    HWE-expected counts at the estimated allele frequency.  Monomorphic
    SNPs are in perfect (degenerate) equilibrium and get p = 1.
    """
    G = _check(genotypes)
    m, n = G.shape
    n0 = (G == 0).sum(axis=1).astype(np.float64)
    n1 = (G == 1).sum(axis=1).astype(np.float64)
    n2 = (G == 2).sum(axis=1).astype(np.float64)
    p = (n1 + 2.0 * n2) / (2.0 * n)
    q = 1.0 - p
    expected = np.stack([q * q * n, 2.0 * p * q * n, p * p * n], axis=1)
    observed = np.stack([n0, n1, n2], axis=1)
    out = np.ones(m)
    valid = (expected > 0).all(axis=1)
    chi2 = np.zeros(m)
    chi2[valid] = (
        ((observed[valid] - expected[valid]) ** 2) / expected[valid]
    ).sum(axis=1)
    out[valid] = sps.chi2.sf(chi2[valid], df=1)
    return out


def hwe_filter(genotypes: np.ndarray, min_pvalue: float = 1e-6) -> np.ndarray:
    """Keep SNPs not rejected by the HWE test at ``min_pvalue``."""
    if not 0.0 <= min_pvalue <= 1.0:
        raise ValueError("min_pvalue must be in [0, 1]")
    return hwe_pvalues(genotypes) >= min_pvalue


@dataclass(frozen=True)
class QcReport:
    """Outcome of a combined QC pass."""

    keep: np.ndarray  # (m,) final mask
    failed_maf: int
    failed_hwe: int
    failed_call_rate: int

    @property
    def n_kept(self) -> int:
        return int(self.keep.sum())

    @property
    def n_dropped(self) -> int:
        return int((~self.keep).sum())


def run_qc(
    genotypes: np.ndarray,
    min_maf: float = 0.01,
    hwe_min_pvalue: float = 1e-6,
    missing_code: int | None = None,
    min_call_rate: float = 0.95,
) -> QcReport:
    """Apply the standard filter stack; returns masks plus failure counts.

    Failure counts are attributed marginally (a SNP failing two filters
    counts in both).
    """
    G = _check(genotypes)
    maf_ok = maf_filter(G, min_maf)
    hwe_ok = hwe_filter(G, hwe_min_pvalue)
    if missing_code is not None:
        call_ok = call_rate_filter(genotypes, missing_code, min_call_rate)
    else:
        call_ok = np.ones(G.shape[0], dtype=bool)
    keep = maf_ok & hwe_ok & call_ok
    return QcReport(
        keep=keep,
        failed_maf=int((~maf_ok).sum()),
        failed_hwe=int((~hwe_ok).sum()),
        failed_call_rate=int((~call_ok).sum()),
    )


def apply_qc(dataset, report: QcReport):
    """Subset a Dataset to the SNPs kept by a QC report.

    Set indices are re-densified (empty sets dropped) so downstream SKAT
    aggregation sees a contiguous partition.
    """
    from repro.genomics.snpsets import SnpSetCollection
    from repro.genomics.synthetic import Dataset

    rows = np.flatnonzero(report.keep)
    if rows.size == 0:
        raise ValueError("QC removed every SNP")
    old_ids = dataset.snpsets.set_ids[rows]
    kept_sets = np.unique(old_ids)
    remap = {int(k): i for i, k in enumerate(kept_sets)}
    new_ids = np.array([remap[int(k)] for k in old_ids], dtype=np.int64)
    names = [dataset.snpsets.names[int(k)] for k in kept_sets]
    return Dataset(
        dataset.genotypes.subset(rows),
        dataset.phenotype,
        dataset.weights[rows],
        SnpSetCollection(new_ids, names),
    )


def _check(genotypes: np.ndarray) -> np.ndarray:
    G = np.asarray(genotypes, dtype=np.float64)
    if G.ndim != 2 or G.shape[1] < 1:
        raise ValueError("genotypes must be (m, n) with n >= 1")
    return G
