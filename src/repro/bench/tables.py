"""Plain-text table rendering for benchmark output.

The goal is rows a reader can lay next to the paper's tables: iteration
counts down the side, our (simulated or live) seconds next to the paper's
published seconds with a ratio column.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_series_table(
    title: str,
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[float | None]],
    unit: str = "s",
) -> str:
    """Columns: x value then one column per series."""
    names = list(series)
    width = max(12, max(len(n) for n in names) + 2)
    lines = [f"== {title} ==", ""]
    header = f"{x_label:>12}" + "".join(f"{n:>{width}}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(x_values):
        row = f"{x!s:>12}"
        for name in names:
            value = series[name][i]
            row += f"{'-':>{width}}" if value is None else f"{value:>{width -len(unit) -1}.1f} {unit}"
        lines.append(row)
    return "\n".join(lines)


def format_comparison_table(
    title: str,
    x_label: str,
    x_values: Sequence,
    ours: Sequence[float | None],
    paper: Sequence[float | None],
    ours_label: str = "simulated",
    paper_label: str = "paper",
) -> str:
    """Ours vs paper with a ratio column (shape check at a glance)."""
    lines = [f"== {title} ==", ""]
    header = f"{x_label:>12}{ours_label:>14}{paper_label:>14}{'ratio':>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for x, mine, theirs in zip(x_values, ours, paper):
        mine_s = "-" if mine is None else f"{mine:12.1f} s"
        theirs_s = "-" if theirs is None else f"{theirs:12.1f} s"
        if mine is None or theirs is None or theirs == 0:
            ratio = "-"
        else:
            ratio = f"{mine / theirs:9.2f}x"
        lines.append(f"{x!s:>12}{mine_s:>14}{theirs_s:>14}{ratio:>10}")
    return "\n".join(lines)
