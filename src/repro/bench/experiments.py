"""The paper's experiment parameters and published measurements.

Input parameter tables (II, IV, VI, VII, VIII) define the workloads; result
tables (III, V) provide the numbers our simulated replays are compared
against.  ``LIVE_SCALE`` defines reduced-size versions of the same shapes
that run on a laptop with the real engine, preserving the ratios the paper
claims (MC vs permutation, cached vs uncached).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.genomics.synthetic import SyntheticConfig


@dataclass(frozen=True)
class ExperimentSpec:
    """One row of an input-parameter table."""

    name: str
    n_patients: int
    n_snps: int
    n_snpsets: int
    n_nodes: int

    @property
    def avg_snps_per_set(self) -> float:
        return self.n_snps / self.n_snpsets

    def synthetic_config(self, seed: int = 0, **overrides) -> SyntheticConfig:
        params = dict(
            n_patients=self.n_patients,
            n_snps=self.n_snps,
            n_snpsets=self.n_snpsets,
            seed=seed,
        )
        params.update(overrides)
        return SyntheticConfig(**params)


#: Table II -- Experiment A (scalability/sensitivity), 6 nodes.
EXPERIMENT_A = ExperimentSpec("A", 1000, 100_000, 1000, 6)

#: Table IV -- Experiment B (caching), 18 nodes, two data scales.
EXPERIMENT_B_10K = ExperimentSpec("B-10K", 1000, 10_000, 1000, 18)
EXPERIMENT_B_1M = ExperimentSpec("B-1M", 1000, 1_000_000, 1000, 18)

#: Table VI -- strong scaling, 1M SNPs.
FIG6_NODES = (6, 12, 18)
FIG6_ITERATIONS = (0, 10, 20)

#: Table VII -- auto-tuning cluster: 36 nodes; Fig. 7 iteration grid.
EXPERIMENT_C = ExperimentSpec("C", 1000, 1_000_000, 1000, 36)
FIG7_ITERATIONS = (0, 10, 100)

#: Figure 3 -- sensitivity: iterations x SNPs held constant at 1e7.
FIG3_CONFIGS = (
    (1000, 10_000),
    (100, 100_000),
    (10, 1_000_000),
)

#: Table III -- published Experiment A runtimes (seconds).
PAPER_TABLE_III = {
    "iterations": (0, 2, 4, 8, 16, 100, 1000, 10000),
    "monte_carlo_avg": (509.4, 532.2, 532.4, 516.4, 542.8, 590.4, 1170.8, 7036.6),
    "monte_carlo_stdv": (9.65, 23.15, 19.26, 17.54, 12.23, 16.89, 54.1, 40.29),
    "permutation_avg": (509.4, 1535.2, 2594.4, 4628.4, 8818.6, None, None, None),
    "permutation_stdv": (9.65, 74.77, 48.64, 132.67, 344.61, None, None, None),
}

#: Table V -- published Experiment B (10K SNPs) runtimes (seconds).
PAPER_TABLE_V = {
    "iterations": (0, 10, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000, 10000),
    "caching_avg": (94, 101, 132, 140.4, 163.6, 178.4, 188.2, 214.8, 225.5, 241.8, 257.4, 283, 1928.6),
    "caching_stdv": (8.51, 4.89, 24.28, 3.64, 9.09, 7.53, 6.76, 12.29, 7.25, 7.66, 10.21, 13.58, 138.35),
    "nocache_avg": (94, 641.4, 5418, 10709, None, None, None, None, None, None, None, None, None),
    "nocache_stdv": (8.51, 34.88, 78.19, 62.14, None, None, None, None, None, None, None, None, None),
}

#: Reduced-size live workloads preserving each experiment's shape.
LIVE_SCALE = {
    "A": ExperimentSpec("A-live", 200, 2000, 50, 1),
    "B": ExperimentSpec("B-live", 200, 2000, 50, 1),
    "quick": ExperimentSpec("quick-live", 100, 500, 20, 1),
}
