"""Benchmark harness: the paper's experiment registry and table printers.

The ``benchmarks/`` suite imports this package to (a) run *live* scaled-down
workloads on the real engine with pytest-benchmark, and (b) replay the
*paper-scale* workloads through the calibrated simulator, printing rows
side by side with the numbers the paper reports.
"""

from repro.bench.experiments import (
    EXPERIMENT_A,
    EXPERIMENT_C,
    EXPERIMENT_B_10K,
    EXPERIMENT_B_1M,
    FIG3_CONFIGS,
    FIG6_ITERATIONS,
    FIG6_NODES,
    FIG7_ITERATIONS,
    LIVE_SCALE,
    PAPER_TABLE_III,
    PAPER_TABLE_V,
    ExperimentSpec,
)
from repro.bench.tables import format_comparison_table, format_series_table

__all__ = [
    "EXPERIMENT_A",
    "EXPERIMENT_C",
    "EXPERIMENT_B_10K",
    "EXPERIMENT_B_1M",
    "ExperimentSpec",
    "FIG3_CONFIGS",
    "FIG6_ITERATIONS",
    "FIG6_NODES",
    "FIG7_ITERATIONS",
    "LIVE_SCALE",
    "PAPER_TABLE_III",
    "PAPER_TABLE_V",
    "format_comparison_table",
    "format_series_table",
]
