"""Command-line interface: ``sparkscore <command>``.

Commands:

- ``generate`` -- write a Section III synthetic dataset as the four input
  text files;
- ``analyze`` -- run a SparkScore analysis (observed / monte-carlo /
  permutation / asymptotic) over a dataset directory;
- ``maxt`` -- variant-level Westfall-Young adjusted p-values;
- ``plan`` -- predicted runtimes on simulated EMR clusters (the paper's
  strong-scaling question);
- ``tune`` -- recommend a container shape for a workload (Experiment C);
- ``history`` -- the history server: render an engine event log as stage
  tables, straggler percentiles, cache hit rates, and critical-path
  analysis; optionally export a Chrome ``trace_event`` file;
- ``doctor`` -- the tuning advisor: run skew/straggler/cache/sizing rules
  over one event log (or every log in a directory) and print ranked,
  actionable recommendations with their evidence; ``--strict`` turns
  high-severity findings into a nonzero exit for CI gating;
- ``postmortem`` -- render a flight-recorder bundle (written on job
  failure when the engine runs with ``--flight-recorder``): the failing
  task, its correlated log lines, alert history, the event timeline, and
  the advisor's recommendations recomputed from the bundle.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

import numpy as np


def _add_generate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("generate", help="write a synthetic dataset (paper Section III)")
    p.add_argument("output_dir")
    p.add_argument("--patients", type=int, default=1000)
    p.add_argument("--snps", type=int, default=10_000)
    p.add_argument("--snpsets", type=int, default=100)
    p.add_argument("--event-rate", type=float, default=0.85)
    p.add_argument("--mean-survival", type=float, default=12.0)
    p.add_argument("--causal-snps", type=int, default=0)
    p.add_argument("--effect-size", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=0)


def _add_analyze(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("analyze", help="run a SparkScore analysis on a dataset directory")
    p.add_argument("dataset_dir")
    p.add_argument("--method", choices=["observed", "monte-carlo", "permutation", "asymptotic"],
                   default="monte-carlo")
    p.add_argument("--iterations", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--batch-size", type=int, default=None,
                   help="replicates per engine pass (default: 64 monte-carlo, 16 permutation)")
    p.add_argument("--engine", choices=["local", "distributed"], default="local")
    p.add_argument("--backend", choices=["serial", "threads", "processes", "cluster"],
                   default="threads")
    p.add_argument("--cluster-address", default=None, metavar="HOST:PORT",
                   help="attach to an externally started cluster head "
                        "(sparkscore cluster start); implies --backend cluster")
    p.add_argument("--cluster-secret", default=None, metavar="TOKEN",
                   help="auth secret of the external cluster head "
                        "(default: $REPRO_CLUSTER_SECRET)")
    p.add_argument("--serializer", choices=["pickle", "numpy", "compressed"],
                   default="pickle",
                   help="data-plane serializer for shuffle blocks and shipped "
                        "cache blocks (engine=distributed only)")
    p.add_argument("--executors", type=int, default=2)
    p.add_argument("--cores", type=int, default=2)
    p.add_argument("--flavor", choices=["paper", "vectorized"], default="vectorized")
    p.add_argument("--top", type=int, default=10, help="rows to print")
    p.add_argument("--output", help="write full per-set results as TSV")
    p.add_argument("--event-log", metavar="PATH",
                   help="write an engine event log (JSONL; distributed engine only)")
    p.add_argument("--trace", metavar="PATH",
                   help="write a Chrome trace_event file (distributed engine only)")
    p.add_argument("--ui-port", type=int, default=None, metavar="PORT",
                   help="serve the live engine UI on this port while the "
                        "analysis runs (0 picks a free port; distributed only)")
    progress = p.add_mutually_exclusive_group()
    progress.add_argument("--progress", dest="progress", action="store_true",
                          default=None,
                          help="show Spark-style console stage progress bars "
                               "(default: on when stdout is a TTY)")
    progress.add_argument("--no-progress", dest="progress", action="store_false")
    adaptive = p.add_mutually_exclusive_group()
    adaptive.add_argument("--adaptive", dest="adaptive", action="store_true",
                          default=None,
                          help="enable adaptive query execution: runtime skew "
                               "repartitioning, speculative task execution, and "
                               "auto-tuned shuffle serialization (equivalent to "
                               "spark.adaptive.enabled=true + "
                               "spark.speculation=true; distributed only)")
    adaptive.add_argument("--no-adaptive", dest="adaptive", action="store_false",
                          help="force adaptive execution and speculation off")
    early = p.add_mutually_exclusive_group()
    early.add_argument("--early-stop", dest="early_stop", action="store_true",
                       default=None,
                       help="stop resampling SNP-sets whose p-value confidence "
                            "interval has settled on one side of alpha "
                            "(equivalent to spark.inference.earlyStop=true; "
                            "distributed only)")
    early.add_argument("--no-early-stop", dest="early_stop", action="store_false",
                       help="force sequential early stopping off")
    p.add_argument("--alpha", type=float, default=None, metavar="A",
                   help="significance threshold the convergence monitor "
                        "classifies against (default: 0.05)")
    p.add_argument("--profile-fraction", type=float, default=0.0, metavar="F",
                   help="run this fraction of tasks under cProfile; hotspots "
                        "land in the event log and `sparkscore history`")
    p.add_argument("--log-level", choices=["debug", "info", "warning", "error"],
                   default=None,
                   help="structured-log level for the engine (distributed only; "
                        "default: info)")
    p.add_argument("--log-file", metavar="PATH", default=None,
                   help="append structured log records as JSONL to PATH "
                        "(distributed engine only)")
    p.add_argument("--metrics-interval", type=float, default=None, metavar="S",
                   help="sample the metrics registry into the in-memory TSDB "
                        "every S seconds; series land in the event log's v5 "
                        "side channel (distributed engine only)")
    p.add_argument("--alerts", action="store_true", default=None,
                   help="evaluate alerting rules (heartbeat loss, GC pressure, "
                        "spill growth, stragglers, cache thrash) against the "
                        "sampled series (distributed engine only)")
    p.add_argument("--alert-rules", metavar="PATH", default=None,
                   help="JSON file of extra alert rules to load alongside the "
                        "built-ins (implies --alerts)")
    p.add_argument("--flight-recorder", metavar="DIR", default=None,
                   help="write a post-mortem bundle to DIR when a job fails "
                        "(inspect with: sparkscore postmortem <bundle>)")


def _add_maxt(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("maxt", help="variant-level Westfall-Young adjusted p-values")
    p.add_argument("dataset_dir")
    p.add_argument("--iterations", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--alpha", type=float, default=0.05)
    p.add_argument("--single-step", action="store_true")
    p.add_argument("--top", type=int, default=10)


def _add_plan(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("plan", help="predict runtimes on simulated EMR clusters")
    p.add_argument("--patients", type=int, default=1000)
    p.add_argument("--snps", type=int, default=1_000_000)
    p.add_argument("--snpsets", type=int, default=1000)
    p.add_argument("--method", choices=["monte_carlo", "permutation"], default="monte_carlo")
    p.add_argument("--iterations", type=int, nargs="+", default=[0, 10, 100, 1000])
    p.add_argument("--nodes", type=int, nargs="+", default=[6, 12, 18])
    p.add_argument("--no-cache", action="store_true")


def _add_history(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "history",
        help="inspect an engine event log: stage tables, stragglers, critical path",
    )
    p.add_argument("event_log", help="JSONL event log (any supported version)")
    p.add_argument("--job", type=int, default=None, help="show only this job id")
    p.add_argument("--export-trace", metavar="PATH",
                   help="write Chrome trace_event JSON (span JSONL if PATH ends in .jsonl)")
    p.add_argument("--metrics", action="store_true",
                   help="also print the process metrics registry (Prometheus text format)")
    p.add_argument("--series", action="store_true",
                   help="replay the v5 sampled-series side channel as "
                        "per-metric sparklines (requires a log written with "
                        "--metrics-interval)")


def _add_doctor(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "doctor",
        help="tuning advisor: ranked recommendations from an event log",
    )
    p.add_argument("path",
                   help="JSONL event log, or a directory of *.jsonl event logs")
    p.add_argument("--json", action="store_true",
                   help="emit recommendations as a JSON array instead of a table")
    p.add_argument("--skew-ratio", type=float, default=4.0, metavar="R",
                   help="max/median ratio above which a stage counts as skewed "
                        "(default: 4.0)")
    p.add_argument("--straggler-multiplier", type=float, default=3.0, metavar="M",
                   help="task duration vs stage median above which a task is a "
                        "straggler (default: 3.0)")
    p.add_argument("--strict", action="store_true",
                   help="exit 2 when any recommendation at or above "
                        "--strict-severity fires (CI gate)")
    p.add_argument("--strict-severity", choices=["info", "warning", "critical"],
                   default="critical", metavar="LEVEL",
                   help="severity floor for --strict (default: critical)")


def _add_postmortem(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "postmortem",
        help="render a flight-recorder bundle: failing task, logs, alerts, advice",
    )
    p.add_argument("bundle",
                   help="post-mortem bundle JSON, or a directory of bundles "
                        "(newest is rendered)")
    p.add_argument("--events", type=int, default=15, metavar="N",
                   help="bus-event timeline rows to print (default: 15)")
    p.add_argument("--logs", type=int, default=20, metavar="N",
                   help="correlated log lines to print (default: 20)")
    p.add_argument("--json", action="store_true",
                   help="dump the raw bundle JSON instead of the report")


def _add_tune(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("tune", help="recommend a YARN container shape")
    p.add_argument("--patients", type=int, default=1000)
    p.add_argument("--snps", type=int, default=100_000)
    p.add_argument("--snpsets", type=int, default=1000)
    p.add_argument("--iterations", type=int, default=10_000)
    p.add_argument("--nodes", type=int, default=18)
    p.add_argument("--containers", type=int, nargs="+", default=None)
    p.add_argument("--memories", type=float, nargs="+", default=[3.0, 5.0, 10.0])
    p.add_argument("--cores", type=int, nargs="+", default=[2, 3, 6])


def _add_cluster(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "cluster",
        help="manage a persistent executor cluster (start / status / stop)",
    )
    cluster_sub = p.add_subparsers(dest="cluster_command", required=True)
    start = cluster_sub.add_parser(
        "start", help="run a cluster head serving a persistent worker fleet"
    )
    start.add_argument("--executors", type=int, default=2)
    start.add_argument("--cores", type=int, default=2)
    start.add_argument("--host", default="127.0.0.1")
    start.add_argument("--port", type=int, default=7077)
    start.add_argument("--heartbeat-interval", type=float, default=0.5)
    start.add_argument(
        "--secret", default=None, metavar="TOKEN",
        help="shared auth secret drivers must present (default: "
             "$REPRO_CLUSTER_SECRET, or an auto-generated token printed "
             "at startup)",
    )
    start.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="exit after this many seconds (default: serve until stopped)",
    )
    status = cluster_sub.add_parser("status", help="show executor lifecycle/warmth")
    status.add_argument("--address", default="127.0.0.1:7077", metavar="HOST:PORT")
    status.add_argument("--secret", default=None, metavar="TOKEN",
                        help="head auth secret (default: $REPRO_CLUSTER_SECRET)")
    top = cluster_sub.add_parser(
        "top", help="live per-executor occupancy/queue/warmth view of a fleet"
    )
    top.add_argument("--address", default="127.0.0.1:7077", metavar="HOST:PORT")
    top.add_argument("--secret", default=None, metavar="TOKEN",
                     help="head auth secret (default: $REPRO_CLUSTER_SECRET)")
    top.add_argument("--interval", type=float, default=1.0, metavar="SECONDS",
                     help="refresh interval (default: 1.0)")
    top.add_argument("--iterations", type=int, default=None, metavar="N",
                     help="exit after N refreshes (default: run until ^C)")
    stop = cluster_sub.add_parser("stop", help="shut the head and its fleet down")
    stop.add_argument("--address", default="127.0.0.1:7077", metavar="HOST:PORT")
    stop.add_argument("--secret", default=None, metavar="TOKEN",
                      help="head auth secret (default: $REPRO_CLUSTER_SECRET)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sparkscore",
        description="SparkScore reproduction: distributed genomic inference",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_generate(sub)
    _add_analyze(sub)
    _add_maxt(sub)
    _add_plan(sub)
    _add_tune(sub)
    _add_history(sub)
    _add_doctor(sub)
    _add_postmortem(sub)
    _add_cluster(sub)
    return parser


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.genomics.io.dataset_io import write_dataset
    from repro.genomics.synthetic import SyntheticConfig, generate_dataset

    config = SyntheticConfig(
        n_patients=args.patients,
        n_snps=args.snps,
        n_snpsets=args.snpsets,
        event_rate=args.event_rate,
        mean_survival_months=args.mean_survival,
        n_causal_snps=args.causal_snps,
        effect_size=args.effect_size,
        seed=args.seed,
    )
    dataset = generate_dataset(config)
    paths = write_dataset(dataset, args.output_dir)
    print(f"wrote {dataset.n_snps} SNPs x {dataset.n_patients} patients, "
          f"{dataset.n_sets} SNP-sets:")
    for kind, path in paths.items():
        print(f"  {kind:<10} {path}")
    return 0


def _load_analysis(args: argparse.Namespace):
    from repro.config import EngineConfig
    from repro.core.sparkscore import SparkScoreAnalysis

    kwargs: dict = {"engine": args.engine}
    want_progress = getattr(args, "progress", None)
    if want_progress is None:  # default: bars only on an interactive terminal
        want_progress = sys.stdout.isatty()
    if args.engine == "distributed":
        cluster_address = getattr(args, "cluster_address", None)
        backend = args.backend
        if cluster_address:
            backend = "cluster"
        config = EngineConfig(
            backend=backend,
            num_executors=args.executors,
            executor_cores=args.cores,
            default_parallelism=args.executors * args.cores,
            profile_fraction=getattr(args, "profile_fraction", 0.0) or 0.0,
            serializer=getattr(args, "serializer", "pickle") or "pickle",
            cluster_address=cluster_address or "",
            cluster_secret=getattr(args, "cluster_secret", None) or "",
        )
        want_adaptive = getattr(args, "adaptive", None)
        if want_adaptive is not None:
            config = config.copy(
                adaptive_enabled=want_adaptive,
                speculation_enabled=want_adaptive,
            )
        want_early_stop = getattr(args, "early_stop", None)
        if want_early_stop is not None:
            config = config.copy(inference_early_stop=want_early_stop)
        alpha = getattr(args, "alpha", None)
        if alpha is not None:
            config = config.copy(inference_alpha=alpha)
        kwargs["flavor"] = args.flavor
        event_log = getattr(args, "event_log", None)
        trace = getattr(args, "trace", None)
        ui_port = getattr(args, "ui_port", None)
        log_level = getattr(args, "log_level", None)
        log_file = getattr(args, "log_file", None)
        metrics_interval = getattr(args, "metrics_interval", None)
        alert_rules = getattr(args, "alert_rules", None)
        alerts = getattr(args, "alerts", None)
        if alert_rules is not None:
            alerts = True
        flight_recorder = getattr(args, "flight_recorder", None)
        if log_level is not None:
            config = config.copy(log_level=log_level)
        monitoring = (
            metrics_interval is not None or alerts or flight_recorder is not None
        )
        if (event_log or trace or log_file or ui_port is not None
                or want_progress or monitoring):
            from repro.engine.context import Context

            kwargs["ctx"] = Context(
                config,
                event_log_path=event_log,
                trace_path=trace,
                ui_port=ui_port,
                progress=want_progress,
                log_file=log_file,
                metrics_interval=metrics_interval,
                alerts=alerts,
                alert_rules=alert_rules,
                flight_recorder=flight_recorder,
            )
            if ui_port is not None:
                print(f"engine UI serving at {kwargs['ctx'].ui_url}", file=sys.stderr)
        else:
            kwargs["config"] = config
    elif getattr(args, "event_log", None) or getattr(args, "trace", None):
        raise SystemExit("--event-log/--trace require --engine distributed")
    elif getattr(args, "ui_port", None) is not None:
        raise SystemExit("--ui-port requires --engine distributed")
    elif getattr(args, "adaptive", None):
        raise SystemExit("--adaptive requires --engine distributed")
    elif getattr(args, "early_stop", None):
        raise SystemExit("--early-stop requires --engine distributed")
    elif getattr(args, "log_file", None) or getattr(args, "log_level", None):
        raise SystemExit("--log-file/--log-level require --engine distributed")
    elif (getattr(args, "metrics_interval", None) is not None
          or getattr(args, "alerts", None)
          or getattr(args, "alert_rules", None)
          or getattr(args, "flight_recorder", None)):
        raise SystemExit(
            "--metrics-interval/--alerts/--alert-rules/--flight-recorder "
            "require --engine distributed"
        )
    analysis = SparkScoreAnalysis.from_files(args.dataset_dir, **kwargs)
    if "ctx" in kwargs:
        analysis._owns_ctx = True  # CLI hands the context over for cleanup
    return analysis


def cmd_analyze(args: argparse.Namespace) -> int:
    with _load_analysis(args) as analysis:
        if args.method == "observed":
            result = analysis.observed()
        elif args.method == "monte-carlo":
            result = analysis.monte_carlo(
                args.iterations, seed=args.seed, batch_size=args.batch_size or 64
            )
        elif args.method == "permutation":
            result = analysis.permutation(
                args.iterations, seed=args.seed, batch_size=args.batch_size or 16
            )
        else:
            result = analysis.asymptotic()
        print(result.to_table(max_rows=args.top))
        wall = result.info.get("wall_seconds")
        if wall is not None:
            print(f"\nwall time: {wall:.2f}s  (engine: {result.info.get('engine')})")
        if result.info.get("early_stop"):
            planned = result.info.get("replicates_planned", 0)
            saved = result.info.get("replicates_saved", 0)
            print(f"early stopping: {result.n_resamples} of {planned} "
                  f"replicates run ({saved} saved), "
                  f"{result.info.get('sets_converged', 0)}/{result.n_sets} "
                  f"sets converged")
        if args.output:
            _write_results_tsv(result, args.output)
            print(f"full results written to {args.output}")
    if getattr(args, "event_log", None):
        print(f"event log written to {args.event_log} "
              f"(inspect with: sparkscore history {args.event_log})")
    if getattr(args, "trace", None):
        print(f"trace written to {args.trace} (load in chrome://tracing)")
    return 0


def _write_results_tsv(result, path: str) -> None:
    pvalues = result.pvalues()
    with open(path, "w") as fh:
        fh.write("set\tn_snps\tstatistic\texceed_count\tpvalue\n")
        for k in range(result.n_sets):
            fh.write(
                f"{result.set_names[k]}\t{result.set_sizes[k]}\t"
                f"{result.observed[k]:.6g}\t{result.exceed_counts[k]}\t{pvalues[k]:.6g}\n"
            )


def cmd_maxt(args: argparse.Namespace) -> int:
    from repro.core.sparkscore import SparkScoreAnalysis

    analysis = SparkScoreAnalysis.from_files(args.dataset_dir)
    result = analysis.variant_maxt(
        args.iterations, seed=args.seed, step_down=not args.single_step
    )
    snp_ids = analysis.dataset.genotypes.snp_ids
    order = np.argsort(result.adjusted_pvalues, kind="stable")
    print(f"# {result.method}, {result.n_resamples} resamples")
    print(f"{'snp':>10}{'|T|':>10}{'raw p':>12}{'adjusted p':>12}")
    for row in order[: args.top]:
        print(f"{int(snp_ids[row]):>10}{result.statistics[row]:>10.3f}"
              f"{result.raw_pvalues[row]:>12.4g}{result.adjusted_pvalues[row]:>12.4g}")
    hits = result.significant(args.alpha)
    print(f"\n{len(hits)} SNPs significant at FWER {args.alpha:g}")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    from repro.bench.tables import format_series_table
    from repro.cluster.nodes import emr_cluster
    from repro.core.perfmodel import SparkScorePerfModel, WorkloadSpec

    model = SparkScorePerfModel()
    workload = WorkloadSpec(
        args.patients, args.snps, args.snpsets, args.method, cache=not args.no_cache
    )
    runs = {n: model.predict(workload, emr_cluster(n)) for n in args.nodes}
    print(format_series_table(
        f"Predicted runtime -- {args.snps} SNPs x {args.patients} patients, {args.method}",
        "iterations",
        args.iterations,
        {f"{n} nodes": [runs[n].total_at(b) for b in args.iterations] for n in args.nodes},
    ))
    for n in args.nodes:
        fits = "fits" if runs[n].cache_fits else "THRASHES"
        print(f"  {n:>3} nodes: per-iteration {runs[n].per_iteration_seconds:.2f}s, cache {fits}")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    from repro.cluster.nodes import emr_cluster
    from repro.core.autotune import ModelTuner
    from repro.core.perfmodel import WorkloadSpec

    tuner = ModelTuner()
    workload = WorkloadSpec(
        args.patients, args.snps, args.snpsets, "monte_carlo", iterations=args.iterations
    )
    containers = args.containers or [args.nodes, 2 * args.nodes, 3 * args.nodes]
    shape, run = tuner.recommend(
        workload, emr_cluster(args.nodes),
        container_counts=containers,
        memories_gib=args.memories,
        cores_options=args.cores,
    )
    print(f"recommended: {shape} on {args.nodes} nodes")
    print(f"predicted total {run.total_seconds:,.0f}s = startup {run.startup_seconds:.0f}s"
          f" + observed {run.observed_seconds:.0f}s"
          f" + {args.iterations} x {run.per_iteration_seconds:.3f}s")
    return 0


_SPARK_TICKS = "▁▂▃▄▅▆▇█"


def _sparkline(values: list[float], width: int = 40) -> str:
    """Render a value list as a unicode block sparkline."""
    if not values:
        return ""
    values = values[-width:]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        _SPARK_TICKS[min(7, int(8 * (v - lo) / span))] for v in values
    )


def cmd_history(args: argparse.Namespace) -> int:
    from repro.engine.eventlog import read_event_log, read_telemetry
    from repro.obs.history import render_history
    from repro.obs.spans import spans_from_jobs, write_chrome_trace, write_spans_jsonl

    try:
        jobs = read_event_log(args.event_log)
    except FileNotFoundError:
        print(f"no such event log: {args.event_log}", file=sys.stderr)
        return 1
    if args.job is not None:
        jobs = [j for j in jobs if j.job_id == args.job]
        if not jobs:
            print(f"no job {args.job} in {args.event_log}", file=sys.stderr)
            return 1
    print(render_history(jobs))
    telemetry = read_telemetry(args.event_log)
    if telemetry:
        heartbeats = [t for t in telemetry if t["event"] == "heartbeat"]
        timeouts = [t for t in telemetry if t["event"] == "executor_timed_out"]
        executors = sorted({t["executor_id"] for t in heartbeats})
        peak_rss = max((t.get("rss_bytes", 0) for t in heartbeats), default=0)
        line = (f"\n   heartbeats: {len(heartbeats)} from "
                f"{len(executors)} executor(s)")
        if peak_rss:
            line += f", peak reported rss {peak_rss / (1 << 20):,.1f} MiB"
        if timeouts:
            line += f"; {len(timeouts)} executor timeout(s): " + ", ".join(
                t["executor_id"] for t in timeouts
            )
        print(line)
    from repro.engine.eventlog import read_fleet

    fleet = read_fleet(args.event_log)
    if fleet:
        snap = fleet[-1]
        warm = snap.get("warm") or {}
        drivers = snap.get("tasks_by_driver") or {}
        line = (f"\n   fleet (v6 side channel): up "
                f"{snap.get('uptime_seconds', 0.0):,.0f}s at log time, "
                f"{snap.get('jobs_served', 0)} job(s) served across "
                f"{len(drivers)} driver(s), "
                f"{snap.get('tasks_completed', 0)} task(s)")
        if warm.get("warm_bytes_saved"):
            line += (f", {warm['warm_bytes_saved'] / (1 << 20):,.1f} MiB "
                     f"warm-cache bytes saved")
        print(line)
    from repro.engine.eventlog import read_adaptive

    adaptive = read_adaptive(args.event_log)
    if adaptive:
        plans = [a for a in adaptive if a.get("kind") != "speculation"]
        spec = [a for a in adaptive if a.get("kind") == "speculation"]
        line = (f"\n   adaptive (v7 side channel): "
                f"{len(plans)} plan decision(s), "
                f"{len(spec)} speculative launch(es)")
        print(line)
        for a in plans:
            print(f"     [{a.get('kind')}] shuffle {a.get('shuffle_id')} "
                  f"stage {a.get('stage_id')} job {a.get('job_id')}: "
                  f"{a.get('old_partitions')} -> {a.get('new_partitions')} "
                  f"partitions ({a.get('detail', '')})")
        for a in spec:
            print(f"     [speculation] stage {a.get('stage_id')} "
                  f"p{a.get('partition')}: twin on "
                  f"{a.get('speculative_executor')} vs "
                  f"{a.get('original_executor')} after "
                  f"{a.get('elapsed_seconds', 0.0):.2f}s "
                  f"(median {a.get('median_seconds', 0.0):.2f}s)")
    from repro.engine.eventlog import read_inference

    inference = read_inference(args.event_log)
    if inference:
        batches = [r for r in inference if r.get("kind") == "batch"]
        converged = [r for r in inference if r.get("kind") == "converged"]
        # final batch record per method carries the run's totals
        finals: dict = {}
        for rec in batches:
            finals[rec.get("method")] = rec
        print(f"\n   inference (v8 side channel): "
              f"{len(batches)} batch(es), {len(converged)} set decision(s)")
        for method, rec in sorted(finals.items()):
            line = (f"     [{method}] {rec.get('replicates_total', 0)} of "
                    f"{rec.get('planned_replicates', 0)} replicates, "
                    f"{rec.get('sets_converged', 0)}/{rec.get('sets_total', 0)} "
                    f"sets converged")
            if rec.get("replicates_saved"):
                line += (f", {rec['replicates_saved']} replicates saved "
                         f"by early stopping")
            print(line)
        for rec in converged[-5:]:
            print(f"     [{rec.get('method')}] {rec.get('set_name')}: "
                  f"{rec.get('status')} at p={rec.get('pvalue', 0.0):.4g} "
                  f"(CI {rec.get('ci_low', 0.0):.4g}..{rec.get('ci_high', 1.0):.4g}, "
                  f"{rec.get('replicates', 0)} replicates)")
    if args.series:
        from repro.engine.eventlog import read_alerts, read_series, series_to_points

        points = series_to_points(read_series(args.event_log))
        if not points:
            print("\nno sampled series in this log "
                  "(was it written with --metrics-interval?)")
        else:
            print(f"\n-- sampled series ({len(points)}) --")
            width = max(len(_series_label(k)) for k in points)
            for key in sorted(points):
                pts = points[key]
                values = [v for _, v in pts]
                print(f"  {_series_label(key):<{width}}  "
                      f"last {values[-1]:<12g} {_sparkline(values)}")
        alerts = read_alerts(args.event_log)
        if alerts:
            print(f"\n-- alert transitions ({len(alerts)}) --")
            for a in alerts:
                labels = ",".join(f"{k}={v}" for k, v in a.get("labels", {}).items())
                print(f"  t={a.get('time', 0.0):.3f} {a.get('transition'):<9} "
                      f"{a.get('rule')} [{a.get('severity')}] "
                      f"{labels} value={a.get('value', 0.0):g}")
    if args.export_trace:
        spans = spans_from_jobs(jobs)
        if args.export_trace.endswith(".jsonl"):
            write_spans_jsonl(spans, args.export_trace)
        else:
            write_chrome_trace(spans, args.export_trace)
        print(f"\ntrace ({len(spans)} spans) written to {args.export_trace}")
    if args.metrics:
        from repro.obs.registry import REGISTRY

        print("\n-- process metrics registry --")
        print(REGISTRY.render(), end="")
    return 0


def _series_label(key: tuple) -> str:
    name, labels = key
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def cmd_doctor(args: argparse.Namespace) -> int:
    from repro.engine.eventlog import (
        read_adaptive,
        read_event_log,
        read_fleet,
        read_inference,
        read_telemetry,
    )
    from repro.obs.advisor import (
        cache_pressure_from_jobs,
        diagnose,
        recommendations_to_json,
        render_recommendations,
    )

    scan_dir = os.path.isdir(args.path)
    if scan_dir:
        paths = sorted(
            os.path.join(args.path, name)
            for name in os.listdir(args.path)
            if name.endswith(".jsonl")
        )
        if not paths:
            print(f"no *.jsonl event logs in {args.path}", file=sys.stderr)
            return 1
    else:
        paths = [args.path]

    jobs, telemetry, fleet, adaptive, inference, read = [], [], [], [], [], []
    for path in paths:
        try:
            jobs.extend(read_event_log(path))
        except FileNotFoundError:
            print(f"no such event log: {path}", file=sys.stderr)
            return 1
        except ValueError as exc:
            if not scan_dir:  # an explicitly named log must parse
                print(f"{path}: {exc}", file=sys.stderr)
                return 1
            continue  # directories may hold other JSONL (log files, traces)
        telemetry.extend(read_telemetry(path))
        fleet.extend(read_fleet(path))
        adaptive.extend(read_adaptive(path))
        inference.extend(read_inference(path))
        read.append(path)
    if scan_dir and not read:
        print(f"no readable event logs in {args.path}", file=sys.stderr)
        return 1
    # no adaptive side-channel records means AQE never acted (off, or a
    # pre-v7 log) -- that's exactly when the enable-adaptive rule may fire
    recs = diagnose(
        jobs,
        telemetry=telemetry,
        cache=cache_pressure_from_jobs(jobs),
        skew_max_over_median=args.skew_ratio,
        straggler_multiplier=args.straggler_multiplier,
        adaptive=bool(adaptive),
        inference=inference,
    )
    if args.json:
        print(recommendations_to_json(recs))
    else:
        n_stages = sum(len(j.stages) for j in jobs)
        print(f"doctor: examined {len(jobs)} job(s), {n_stages} stage(s) "
              f"from {len(read)} log(s)")
        if fleet:
            snap = fleet[-1]
            warm = snap.get("warm") or {}
            print(f"fleet context: {snap.get('jobs_served', 0)} job(s) on a "
                  f"persistent fleet, {snap.get('tasks_completed', 0)} "
                  f"task(s), {warm.get('warm_bytes_saved', 0) / (1 << 20):,.1f} "
                  f"MiB warm-cache bytes saved")
        if adaptive:
            plans = sum(1 for a in adaptive if a.get("kind") != "speculation")
            print(f"adaptive context: {plans} plan decision(s), "
                  f"{len(adaptive) - plans} speculative launch(es) recorded")
        if inference:
            batches = sum(1 for r in inference if r.get("kind") == "batch")
            decided = sum(1 for r in inference if r.get("kind") == "converged")
            print(f"inference context: {batches} replicate batch(es), "
                  f"{decided} set decision(s) recorded")
        print()
        print(render_recommendations(recs), end="")
    if getattr(args, "strict", False):
        from repro.obs.advisor import SEVERITIES

        floor = SEVERITIES[args.strict_severity]
        gating = [r for r in recs if SEVERITIES.get(r.severity, 0) >= floor]
        if gating:
            print(f"\nstrict mode: {len(gating)} finding(s) at or above "
                  f"{args.strict_severity!r} -- failing", file=sys.stderr)
            return 2
    return 0


def cmd_postmortem(args: argparse.Namespace) -> int:
    import json as _json

    from repro.engine.eventlog import _job_from_dict
    from repro.obs.advisor import (
        cache_pressure_from_jobs,
        diagnose,
        render_recommendations,
    )
    from repro.obs.flightrecorder import load_bundle

    path = args.bundle
    if os.path.isdir(path):
        candidates = sorted(
            os.path.join(path, name)
            for name in os.listdir(path)
            if name.endswith(".json")
        )
        if not candidates:
            print(f"no *.json bundles in {path}", file=sys.stderr)
            return 1
        path = candidates[-1]
    try:
        bundle = load_bundle(path)
    except FileNotFoundError:
        print(f"no such bundle: {args.bundle}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(bundle, indent=1))
        return 0

    print(f"post-mortem bundle: {path}")
    print(f"  reason: {bundle.get('reason')}   "
          f"captured window: {bundle.get('window')}s   "
          f"t={bundle.get('time', 0.0):.3f}")
    config = bundle.get("config") or {}
    if config:
        print(f"  engine: backend={config.get('backend')} "
              f"{config.get('num_executors')}x{config.get('executor_cores')} cores, "
              f"parallelism {config.get('default_parallelism')}, "
              f"max_task_retries {config.get('max_task_retries')}")

    failing = bundle.get("failing_task")
    if failing is not None:
        print(f"\nfailing task: {failing['stage_id']}.{failing['partition']}"
              f"#{failing['attempt']} on {failing['executor_id']}")
        print(f"  error: {failing.get('error')}")
    elif bundle.get("error"):
        print(f"\nerror: {bundle['error']}")

    # log lines correlated with the failing task (or, failing that, the
    # tail of the captured ring)
    logs = bundle.get("logs", [])
    if failing is not None:
        correlated = [
            rec for rec in logs
            if rec.get("stage_id") == failing["stage_id"]
            and rec.get("partition") in (failing["partition"], None)
        ] or logs
    else:
        correlated = logs
    if correlated:
        print(f"\ncorrelated logs ({min(len(correlated), args.logs)} of {len(correlated)}):")
        for rec in correlated[-args.logs:]:
            where = ".".join(
                str(rec[k]) for k in ("stage_id", "partition") if rec.get(k) is not None
            )
            print(f"  [{rec.get('level', '?'):<7}] {rec.get('logger', '?')} "
                  f"{('(' + where + ') ') if where else ''}{rec.get('message')}")

    alerts = (bundle.get("alerts") or {}).get("history", [])
    if alerts:
        print(f"\nalert history ({len(alerts)}):")
        for a in alerts:
            labels = ",".join(f"{k}={v}" for k, v in a.get("labels", {}).items())
            print(f"  t={a.get('time', 0.0):.3f} {a.get('transition'):<9} "
                  f"{a.get('rule')} [{a.get('severity')}] {labels}")

    executors = bundle.get("executors", [])
    if executors:
        dead = [e for e in executors if not e.get("alive") or e.get("heartbeats_suspended")]
        line = f"\nexecutors: {len(executors)} total"
        if dead:
            line += ", unhealthy: " + ", ".join(
                f"{e['executor_id']}"
                f"({'dead' if not e.get('alive') else 'silent'})" for e in dead
            )
        print(line)

    events = bundle.get("events", [])
    if events:
        print(f"\nevent timeline (last {min(len(events), args.events)} "
              f"of {len(events)} in window):")
        for ev in events[-args.events:]:
            desc = " ".join(
                f"{k}={v}" for k, v in ev.items()
                if k not in ("event", "time") and v not in (None, "", [], {})
            )
            print(f"  t={ev.get('time', 0.0):.3f} {ev['event']:<18} {desc}")

    open_spans = bundle.get("open_spans", [])
    if open_spans:
        print(f"\nstill open at failure: "
              + ", ".join(s.get("name", "?") for s in open_spans))

    aqe = bundle.get("adaptive")
    if aqe and (aqe.get("stages_rewritten") or aqe.get("serializer_picks")
                or aqe.get("speculative_launched")):
        print(f"\nadaptive execution: {aqe.get('stages_rewritten', 0)} plan "
              f"rewrite(s), {aqe.get('serializer_picks', 0)} serializer "
              f"pick(s), speculative launched/won "
              f"{aqe.get('speculative_launched', 0)}/"
              f"{aqe.get('speculative_won', 0)}")
        for d in (aqe.get("decisions") or [])[-5:]:
            if d.get("kind") == "speculation":
                print(f"  [speculation] stage {d.get('stage_id')} "
                      f"p{d.get('partition')}: twin on "
                      f"{d.get('speculative_executor')}")
            else:
                print(f"  [{d.get('kind')}] shuffle {d.get('shuffle_id')} "
                      f"stage {d.get('stage_id')}: "
                      f"{d.get('old_partitions')} -> "
                      f"{d.get('new_partitions')} ({d.get('detail', '')})")

    inference = bundle.get("inference")
    if inference and inference.get("runs"):
        mode = "early stopping" if inference.get("enabled") else "monitor only"
        print(f"\ninference convergence ({mode}, "
              f"alpha={inference.get('alpha', 0.05):g}, "
              f"{inference.get('ci', 'wilson')} intervals):")
        for run in inference["runs"]:
            line = (f"  [{run.get('method')}] "
                    f"{run.get('replicates_total', 0)} of "
                    f"{run.get('planned_replicates', 0)} replicates, "
                    f"{run.get('sets_converged', 0)}/{run.get('sets_total', 0)} "
                    f"sets converged")
            if run.get("replicates_saved"):
                line += f", {run['replicates_saved']} saved"
            print(line)
            undecided = [
                s for s in run.get("sets", ()) if s.get("status") == "undecided"
            ]
            if undecided:
                print("    still undecided at failure: " + ", ".join(
                    f"{s.get('name')} (p^={s.get('pvalue', 1.0):.3g})"
                    for s in undecided[:5]
                ) + (" ..." if len(undecided) > 5 else ""))

    job_dict = bundle.get("job")
    if job_dict is not None:
        try:
            job = _job_from_dict(job_dict)
        except (KeyError, ValueError):
            job = None
        if job is not None:
            recs = diagnose([job], cache=cache_pressure_from_jobs([job]))
            print("\n-- advisor (recomputed from bundle) --")
            print(render_recommendations(recs), end="")
    return 0


def _fleet_series(snap: dict, name: str) -> "dict[str, list[float]]":
    """Per-executor value lists for one fleet series name."""
    out: dict[str, list[float]] = {}
    for series in snap.get("series", ()):
        if series.get("name") != name:
            continue
        eid = (series.get("labels") or {}).get("executor_id", "")
        out[eid] = [v for _, v in series.get("samples", ())]
    return out


def _render_fleet_top(address: str, snap: dict) -> str:
    """One ``cluster top`` frame: fleet totals + a per-executor table."""
    warm = snap.get("warm") or {}
    lines = [
        f"fleet at {address}  up {snap.get('uptime_seconds', 0.0):,.0f}s  "
        f"jobs {snap.get('jobs_served', 0)}  "
        f"tasks {snap.get('tasks_completed', 0)} "
        f"({snap.get('task_errors', 0)} err)  "
        f"heartbeats {snap.get('heartbeats_received', 0)}",
        f"warm cache: {warm.get('binaries_cached', 0)} binaries, "
        f"{warm.get('warm_bytes_saved', 0) / (1 << 20):,.1f} MiB saved, "
        f"dedup hit rate {warm.get('dedup_hit_rate', 0.0):.0%}  "
        f"frames in/out {snap.get('frame_bytes_in', 0) / (1 << 20):,.1f}/"
        f"{snap.get('frame_bytes_out', 0) / (1 << 20):,.1f} MiB",
    ]
    drivers = snap.get("tasks_by_driver") or {}
    if drivers:
        lines.append("drivers: " + "  ".join(
            f"{d[:12]}={n}" for d, n in sorted(drivers.items())
        ))
    inference = snap.get("inference_by_driver") or {}
    for driver, info in sorted(inference.items()):
        tag = "early-stop" if info.get("early_stop") else "monitor"
        lines.append(
            f"inference [{driver[:12]}] {info.get('method', '?')}: "
            f"{info.get('replicates_total', 0)}/"
            f"{info.get('planned_replicates', 0)} replicates @ "
            f"{info.get('replicates_per_sec', 0.0):,.0f}r/s, "
            f"{info.get('sets_converged', 0)}/{info.get('sets_total', 0)} "
            f"sets converged ({tag})"
        )
    occupancy = _fleet_series(snap, "fleet_slot_occupancy")
    depth = _fleet_series(snap, "fleet_queue_depth")
    rss = _fleet_series(snap, "fleet_executor_rss_bytes")
    lines.append("")
    lines.append(f"  {'executor':<10} {'state':<12} {'occ':<5} {'queue':<5} "
                 f"{'rss MiB':<8} {'done':<6} occupancy trend")
    for row in snap.get("executors", ()):
        eid = row.get("executor_id", "?")
        occ = occupancy.get(eid, [])
        lines.append(
            f"  {eid:<10} {row.get('state', '?'):<12} "
            f"{(occ[-1] if occ else 0.0):<5.0%} "
            f"{int((depth.get(eid) or [0])[-1]):<5} "
            f"{(rss.get(eid) or [0])[-1] / (1 << 20):<8,.0f} "
            f"{row.get('tasks_done', 0):<6} "
            f"{_sparkline(occ)}"
        )
    lifecycle = snap.get("lifecycle") or []
    if lifecycle:
        tail = lifecycle[-3:]
        lines.append("recent lifecycle: " + "; ".join(
            f"{eid} -> {state}" for _, eid, state in tail
        ))
    return "\n".join(lines)


def cmd_cluster(args: argparse.Namespace) -> int:
    from repro.engine.cluster_backend import (
        ClusterHead,
        cluster_shutdown,
        cluster_status,
        fleet_status,
    )

    if args.cluster_command == "start":
        generated = args.secret is None and not os.environ.get("REPRO_CLUSTER_SECRET")
        head = ClusterHead(
            num_executors=args.executors,
            executor_cores=args.cores,
            host=args.host,
            port=args.port,
            hb_interval=args.heartbeat_interval,
            secret=args.secret,
        )
        print(f"cluster head listening on {head.address} "
              f"({args.executors} executors x {args.cores} cores)", flush=True)
        if generated:
            print(f"cluster secret: {head.secret}\n"
                  f"  drivers attach with spark.cluster.secret={head.secret} "
                  f"or REPRO_CLUSTER_SECRET={head.secret}", flush=True)
        try:
            head.serve_forever(duration=args.duration)
        except KeyboardInterrupt:
            pass
        finally:
            head.stop()
        return 0

    if args.cluster_command == "status":
        try:
            info = cluster_status(args.address, args.secret)
        except (ConnectionError, OSError) as exc:
            print(f"no cluster head at {args.address}: {exc}", file=sys.stderr)
            return 1
        print(f"cluster at {args.address}: {len(info)} executor(s)")
        for row in info:
            print(f"  {row['executor_id']:<10} {row['state']:<8} "
                  f"pid={row['pid']} slots={row['slots']} "
                  f"inflight={row['inflight']} tasks_done={row['tasks_done']} "
                  f"binaries_cached={row['binaries_cached']} "
                  f"{'warm' if row['warm'] else 'cold'}")
        try:
            snap = fleet_status(args.address, args.secret)
        except (ConnectionError, OSError):
            snap = None  # pre-fleet head: the executor table stands alone
        if snap is not None:
            warm = snap.get("warm") or {}
            print(f"fleet: up {snap.get('uptime_seconds', 0.0):,.0f}s, "
                  f"{snap.get('jobs_served', 0)} job(s) served, "
                  f"{snap.get('tasks_completed', 0)} task(s) completed, "
                  f"{warm.get('warm_bytes_saved', 0) / (1 << 20):,.1f} MiB "
                  f"warm-cache bytes saved")
        return 0

    if args.cluster_command == "top":
        import time as _time

        shown = 0
        try:
            while True:
                try:
                    snap = fleet_status(args.address, args.secret)
                except (ConnectionError, OSError) as exc:
                    print(f"no cluster head at {args.address}: {exc}",
                          file=sys.stderr)
                    return 1
                if shown:
                    print("\x1b[2J\x1b[H", end="")  # clear + home between frames
                print(_render_fleet_top(args.address, snap), flush=True)
                shown += 1
                if args.iterations is not None and shown >= args.iterations:
                    return 0
                _time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0

    try:
        cluster_shutdown(args.address, args.secret)
    except (ConnectionError, OSError) as exc:
        print(f"no cluster head at {args.address}: {exc}", file=sys.stderr)
        return 1
    print(f"cluster at {args.address} shutting down")
    return 0


_COMMANDS = {
    "generate": cmd_generate,
    "analyze": cmd_analyze,
    "maxt": cmd_maxt,
    "plan": cmd_plan,
    "tune": cmd_tune,
    "history": cmd_history,
    "doctor": cmd_doctor,
    "postmortem": cmd_postmortem,
    "cluster": cmd_cluster,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # stdout went away mid-report (e.g. `sparkscore history ... | head`);
        # detach so the interpreter doesn't raise again at shutdown
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
