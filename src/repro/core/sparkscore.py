"""High-level analysis facade: one object, every SparkScore analysis.

:class:`SparkScoreAnalysis` wraps a dataset plus an execution engine
("local" pure-NumPy or "distributed" mini-Spark) and exposes the paper's
methods -- observed SKAT statistics, Monte Carlo and permutation
resampling -- alongside the asymptotic and Wald comparators.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.config import EngineConfig
from repro.core.algorithms import DistributedSparkScore
from repro.core.local import LocalSparkScore
from repro.core.results import ResamplingResult
from repro.genomics.synthetic import Dataset
from repro.stats.score.base import ScoreModel
from repro.stats.score.cox import CoxScoreModel
from repro.stats.wald import CoxMleResult, cox_mle

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.context import Context

ENGINES = ("local", "distributed")


class SparkScoreAnalysis:
    """A configured SparkScore analysis over one dataset."""

    def __init__(
        self,
        dataset: Dataset,
        model: ScoreModel | None = None,
        engine: str = "local",
        config: EngineConfig | None = None,
        ctx: "Context | None" = None,
        **engine_options: Any,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}")
        self.dataset = dataset
        self.model = model or CoxScoreModel(dataset.phenotype)
        self.engine = engine
        self._owns_ctx = False
        self.ctx: "Context | None" = None
        if engine == "local":
            if engine_options:
                raise TypeError(f"local engine takes no options, got {sorted(engine_options)}")
            self._impl: LocalSparkScore | DistributedSparkScore = LocalSparkScore(
                dataset, self.model
            )
        else:
            if ctx is None:
                from repro.engine.context import Context

                ctx = Context(config or EngineConfig())
                self._owns_ctx = True
            self.ctx = ctx
            self._impl = DistributedSparkScore(ctx, dataset, self.model, **engine_options)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_dataset(cls, dataset: Dataset, **kwargs: Any) -> "SparkScoreAnalysis":
        return cls(dataset, **kwargs)

    @classmethod
    def from_files(
        cls, base: str, hdfs=None, parse_with_engine: bool = False, **kwargs: Any
    ) -> "SparkScoreAnalysis":
        """Load the four input files and build an analysis.

        With ``parse_with_engine=True`` (distributed engine only) the
        genotype and weight files are parsed by engine map tasks rather
        than the driver, as in the paper.
        """
        from repro.genomics.io.dataset_io import (
            GENOTYPES_FILE,
            WEIGHTS_FILE,
            read_dataset,
        )

        dataset = read_dataset(base, hdfs)
        if parse_with_engine:
            if kwargs.get("engine", "local") != "distributed":
                raise ValueError("parse_with_engine requires engine='distributed'")
            prefix = f"{base.rstrip('/')}/"
            if hdfs is not None and not prefix.startswith("hdfs://"):
                prefix = "hdfs://" + prefix.lstrip("/")
            kwargs.setdefault("input_paths", {
                "genotypes": prefix + GENOTYPES_FILE,
                "weights": prefix + WEIGHTS_FILE,
            })
        return cls(dataset, **kwargs)

    # -- analyses ------------------------------------------------------------------

    def observed(self) -> ResamplingResult:
        """Algorithm 1: observed SKAT statistics (no inference)."""
        return self._impl.observed()

    def monte_carlo(
        self,
        iterations: int,
        seed: int = 0,
        batch_size: int = 64,
        cache_contributions: bool = True,
        monitor=None,
    ) -> ResamplingResult:
        """Algorithm 3: Lin's Monte Carlo resampling (cached U by default).

        The distributed engine mints its own
        :class:`~repro.obs.inference.ConvergenceMonitor` from the context
        (telemetry is always on; early stopping obeys
        ``inference_early_stop``); ``monitor`` lets local-engine callers
        attach one by hand.
        """
        if isinstance(self._impl, LocalSparkScore):
            return self._impl.monte_carlo(
                iterations, seed, batch_size, cache_contributions, monitor=monitor
            )
        if monitor is not None:
            raise TypeError("the distributed engine mints its own monitor")
        return self._impl.monte_carlo(iterations, seed, batch_size, cache_contributions)

    def permutation(
        self, iterations: int, seed: int = 0, batch_size: int = 16, monitor=None
    ) -> ResamplingResult:
        """Algorithm 2: permutation resampling (full recompute per replicate).

        ``batch_size`` controls how many permuted phenotypes the distributed
        engine broadcasts per job (the local engine streams one at a time;
        both consume the identical replicate sequence).  ``monitor`` follows
        the :meth:`monte_carlo` contract.
        """
        if isinstance(self._impl, LocalSparkScore):
            return self._impl.permutation(iterations, seed, monitor=monitor)
        if monitor is not None:
            raise TypeError("the distributed engine mints its own monitor")
        return self._impl.permutation(iterations, seed, batch_size)

    def asymptotic(self, method: str = "liu") -> ResamplingResult:
        """Mixture-of-chi-square p-values (no resampling).

        Always evaluated locally: it needs the dense U matrix and per-set
        eigendecompositions, which are cheap relative to resampling.
        """
        local = self._impl if isinstance(self._impl, LocalSparkScore) else LocalSparkScore(
            self.dataset, self.model
        )
        return local.asymptotic(method)

    def wald(self, **kwargs: Any) -> CoxMleResult:
        """Per-SNP Wald/LRT via Newton-Raphson -- the costly comparator.

        Only defined for survival phenotypes (Cox model).
        """
        if not isinstance(self.model, CoxScoreModel):
            raise TypeError("Wald comparator requires a Cox score model")
        return cox_mle(self.dataset.phenotype, self.dataset.genotypes.matrix, **kwargs)

    def marginal_scores(self) -> np.ndarray:
        """Per-SNP marginal scores U_j (variant-by-variant analysis)."""
        return self.model.scores(self.dataset.genotypes.matrix.astype(np.float64))

    def _auto_monitor(self, method: str, planned: int, n_sets: int, set_names):
        """A context-wired convergence monitor, or None on the local engine."""
        if self.ctx is None:
            return None
        return self.ctx.inference.new_monitor(n_sets, method, planned, set_names)

    def skat_o(
        self,
        iterations: int,
        seed: int = 0,
        batch_size: int = 128,
        rho_grid: tuple[float, ...] | None = None,
        monitor=None,
    ):
        """SKAT-O: per-set optimum over the SKAT/burden interpolation grid.

        Resampling-based with min-p calibration; returns a
        :class:`~repro.stats.skato.SkatOResult`.  With a distributed
        context attached a convergence monitor is minted automatically
        (per-set masking off -- min-p calibration needs the full tensor).
        """
        from repro.stats.skato import DEFAULT_RHO_GRID, skato_resampling

        if monitor is None:
            monitor = self._auto_monitor(
                "skat_o", iterations, self.dataset.n_sets,
                list(self.dataset.snpsets.names),
            )
        U = self.model.contributions(self.dataset.genotypes.matrix.astype(np.float64))
        return skato_resampling(
            U,
            self.dataset.weights,
            self.dataset.snpsets.set_ids,
            self.dataset.n_sets,
            iterations,
            seed=seed,
            batch_size=batch_size,
            rho_grid=rho_grid or DEFAULT_RHO_GRID,
            monitor=monitor,
        )

    def variant_maxt(
        self,
        iterations: int,
        seed: int = 0,
        batch_size: int = 64,
        step_down: bool = True,
        monitor=None,
    ):
        """Variant-level Westfall-Young maxT inference (FWER-adjusted).

        Runs the single-SNP analysis the paper's introduction describes,
        with resampling-based multiplicity adjustment (paper ref. [40]).
        Returns a :class:`~repro.stats.resampling.multipletesting.MaxTResult`.
        With a distributed context attached a convergence monitor is minted
        automatically (one "set" per SNP, adjusted p-values; per-SNP
        masking off -- step-down needs a common denominator).
        """
        from repro.stats.resampling.multipletesting import westfall_young_maxt

        if monitor is None:
            monitor = self._auto_monitor(
                "variant_maxt", iterations, self.dataset.n_snps,
                [str(s) for s in self.dataset.genotypes.snp_ids],
            )
        U = self.model.contributions(self.dataset.genotypes.matrix.astype(np.float64))
        return westfall_young_maxt(U, iterations, seed, batch_size, step_down, monitor=monitor)

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        if self._owns_ctx and self.ctx is not None:
            self.ctx.stop()

    def __enter__(self) -> "SparkScoreAnalysis":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SparkScoreAnalysis(engine={self.engine!r}, snps={self.dataset.n_snps}, "
            f"patients={self.dataset.n_patients}, sets={self.dataset.n_sets})"
        )
