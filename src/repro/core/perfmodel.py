"""Performance model: SparkScore workloads -> simulated cluster runtimes.

Combines the calibrated :class:`~repro.cluster.costmodel.CostModel` with
the discrete-event :class:`~repro.cluster.simulation.ClusterSimulator` to
predict wall-clock time for a workload on an arbitrary EMR cluster.  This
is the machinery behind every paper-scale benchmark figure: the observed
job and one resampling iteration are simulated in full (task placement,
stragglers, stage barriers), and iterations are composed linearly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.costmodel import CostModel
from repro.cluster.nodes import ClusterSpec
from repro.cluster.simulation import ClusterSimulator, SimStage, even_tasks
from repro.cluster.yarn import ContainerAllocation, ResourceManager

HDFS_BLOCK_BYTES = 128 * 1024**2

METHODS = ("monte_carlo", "permutation")


@dataclass(frozen=True)
class WorkloadSpec:
    """A SparkScore run: data shape + resampling method."""

    n_patients: int
    n_snps: int
    n_snpsets: int
    method: str = "monte_carlo"
    iterations: int = 0
    cache: bool = True

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ValueError(f"method must be one of {METHODS}")
        if min(self.n_patients, self.n_snps, self.n_snpsets) < 1:
            raise ValueError("workload dimensions must be positive")
        if self.iterations < 0:
            raise ValueError("iterations must be >= 0")


@dataclass
class PredictedRun:
    """Predicted wall-clock decomposition for one workload."""

    workload: WorkloadSpec
    allocation: ContainerAllocation
    startup_seconds: float
    observed_seconds: float
    per_iteration_seconds: float
    cache_fits: bool
    breakdown: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return (
            self.startup_seconds
            + self.observed_seconds
            + self.workload.iterations * self.per_iteration_seconds
        )

    def total_at(self, iterations: int) -> float:
        """Total for a different iteration count (same workload shape)."""
        return self.startup_seconds + self.observed_seconds + iterations * self.per_iteration_seconds


class SparkScorePerfModel:
    """Predicts SparkScore runtimes on simulated EMR clusters."""

    def __init__(self, cost: CostModel | None = None, seed: int = 0) -> None:
        self.cost = cost or CostModel()
        self.seed = seed

    # -- public API ------------------------------------------------------------

    def predict(
        self,
        workload: WorkloadSpec,
        cluster: ClusterSpec | ContainerAllocation,
    ) -> PredictedRun:
        allocation = (
            cluster
            if isinstance(cluster, ContainerAllocation)
            else ResourceManager(cluster).default_allocation()
        )
        cost = self.cost
        cluster_spec = allocation.cluster
        # vcores may oversubscribe under YARN's default calculator, but
        # physical cores bound actual throughput
        slots = self._slots(allocation)
        simulator = ClusterSimulator(
            slots,
            task_overhead_s=cost.task_overhead_s,
            straggler_sigma=cost.straggler_sigma,
            seed=self.seed,
        )

        observed = simulator.run(self._observed_stages(workload, allocation)).makespan
        cache_fits = cost.contributions_fit_in_cache(
            cluster_spec, workload.n_snps, workload.n_patients
        )
        effective_cache = workload.cache and cache_fits and workload.method == "monte_carlo"
        iter_stages = self._iteration_stages(workload, allocation, effective_cache)
        per_iteration = simulator.run(iter_stages).makespan
        startup = cost.startup_seconds(allocation.num_containers)

        return PredictedRun(
            workload=workload,
            allocation=allocation,
            startup_seconds=startup,
            observed_seconds=observed,
            per_iteration_seconds=per_iteration,
            cache_fits=cache_fits,
            breakdown={
                "slots": slots,
                "parse_score_core_seconds": cost.parse_score_core_seconds(
                    workload.n_snps, workload.n_patients
                ),
                "mc_update_core_seconds": cost.mc_update_core_seconds(
                    workload.n_snps, workload.n_patients
                ),
                "cache_requested": workload.cache,
                "cache_effective": effective_cache,
                "u_cached_bytes": cost.contributions_cached_bytes(
                    workload.n_snps, workload.n_patients
                ),
                "aggregate_cache_bytes": cost.aggregate_cache_bytes(cluster_spec),
            },
        )

    def predict_grid(
        self,
        workload: WorkloadSpec,
        cluster: ClusterSpec | ContainerAllocation,
        iteration_grid: list[int],
    ) -> dict[int, float]:
        """Total runtime at each iteration count (single simulation reused)."""
        run = self.predict(workload, cluster)
        return {b: run.total_at(b) for b in iteration_grid}

    # -- stage construction ----------------------------------------------------------

    @staticmethod
    def _slots(allocation: ContainerAllocation) -> int:
        return min(allocation.total_cores, allocation.cluster.total_vcpus)

    def _n_parse_tasks(self, workload: WorkloadSpec, slots: int) -> int:
        text_bytes = self.cost.genotype_text_bytes(workload.n_snps, workload.n_patients)
        blocks = max(1, math.ceil(text_bytes / HDFS_BLOCK_BYTES))
        return max(slots, blocks)

    def _observed_stages(
        self, workload: WorkloadSpec, allocation: ContainerAllocation
    ) -> list[SimStage]:
        """Algorithm 1: cold parse+score stage, then join/aggregate stage."""
        cost = self.cost
        slots = self._slots(allocation)
        n_tasks = self._n_parse_tasks(workload, slots)
        parse_work = cost.parse_score_core_seconds(workload.n_snps, workload.n_patients)
        agg_work = cost.aggregate_core_seconds(workload.n_snps)
        broadcast = cost.broadcast_seconds(allocation.cluster, workload.n_patients * 16)
        shuffle = cost.shuffle_seconds(allocation.cluster, workload.n_snps * 24)
        return [
            SimStage(
                0,
                even_tasks(parse_work, n_tasks),
                name="parse+score",
                launch_overhead=cost.stage_cold_s + broadcast,
            ),
            SimStage(
                1,
                even_tasks(agg_work, slots),
                parent_ids=(0,),
                name="join+aggregate",
                launch_overhead=cost.stage_cold_s + shuffle,
            ),
        ]

    def _iteration_stages(
        self,
        workload: WorkloadSpec,
        allocation: ContainerAllocation,
        cached: bool,
    ) -> list[SimStage]:
        cost = self.cost
        slots = self._slots(allocation)
        agg_work = cost.aggregate_core_seconds(workload.n_snps)
        shuffle = cost.shuffle_seconds(allocation.cluster, workload.n_snps * 24)
        if workload.method == "permutation":
            # re-broadcast shuffled pairs, recompute Algorithm 1 steps 6-12
            n_tasks = self._n_parse_tasks(workload, slots)
            work = cost.parse_score_core_seconds(workload.n_snps, workload.n_patients)
            broadcast = cost.broadcast_seconds(allocation.cluster, workload.n_patients * 16)
            return [
                SimStage(
                    0,
                    even_tasks(work, n_tasks),
                    name="perm:recompute",
                    launch_overhead=cost.stage_cold_s + broadcast,
                ),
                SimStage(
                    1,
                    even_tasks(agg_work, slots),
                    parent_ids=(0,),
                    name="perm:aggregate",
                    launch_overhead=cost.stage_cold_s + shuffle,
                ),
            ]
        mc_work = cost.mc_update_core_seconds(workload.n_snps, workload.n_patients)
        broadcast = cost.broadcast_seconds(allocation.cluster, workload.n_patients * 8)
        if cached:
            return [
                SimStage(
                    0,
                    even_tasks(mc_work, slots),
                    name="mc:update(cached)",
                    launch_overhead=cost.stage_warm_s + broadcast,
                ),
                SimStage(
                    1,
                    even_tasks(agg_work, slots),
                    parent_ids=(0,),
                    name="mc:aggregate",
                    launch_overhead=cost.stage_warm_s + shuffle,
                ),
            ]
        # uncached: the U RDD lineage is recomputed from the genotype text;
        # nothing is warm, so both stages pay cold launches
        n_tasks = self._n_parse_tasks(workload, slots)
        recompute = cost.parse_score_core_seconds(workload.n_snps, workload.n_patients)
        return [
            SimStage(
                0,
                even_tasks(recompute + mc_work, n_tasks),
                name="mc:recompute+update",
                launch_overhead=cost.stage_cold_s + broadcast,
            ),
            SimStage(
                1,
                even_tasks(agg_work, slots),
                parent_ids=(0,),
                name="mc:aggregate",
                launch_overhead=cost.stage_cold_s + shuffle,
            ),
        ]
