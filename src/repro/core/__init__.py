"""SparkScore core: the paper's Algorithms 1-3 and the analysis API."""

from repro.core.local import LocalSparkScore
from repro.core.results import ResamplingResult, SnpSetResult
from repro.core.sparkscore import SparkScoreAnalysis

__all__ = ["LocalSparkScore", "ResamplingResult", "SnpSetResult", "SparkScoreAnalysis"]
