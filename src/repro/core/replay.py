"""What-if replay: measured job -> simulated cluster of any size.

Every engine job records its stage DAG and per-task wall times
(:class:`~repro.engine.metrics.JobMetrics`).  This module converts that
record into the simulator's stage graph, so a job measured once on a
laptop can be replayed on a hypothetical cluster: "what would this exact
task mix look like on 6 vs 18 nodes?" -- the same question the paper's
strong-scaling experiment buys EMR time to answer.

Replay uses *measured* durations (optionally rescaled for faster/slower
cores), so it complements the a-priori cost model in
:mod:`repro.core.perfmodel`: one extrapolates from parameters, the other
from observations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.simulation import ClusterSimulator, SimReport, SimStage, SimTask
from repro.engine.metrics import JobMetrics


@dataclass(frozen=True)
class RecordedJob:
    """A job's task graph with measured durations."""

    description: str
    stages: tuple[SimStage, ...]
    total_task_seconds: float

    @property
    def n_tasks(self) -> int:
        return sum(len(s.tasks) for s in self.stages)


def capture_job(job: JobMetrics, include_failed_attempts: bool = False) -> RecordedJob:
    """Convert recorded job metrics into a replayable stage graph.

    Stage dependencies come from the scheduler's parent-stage bookkeeping;
    task durations are the measured per-attempt wall times.  Stages that
    ran more than once (resubmissions) contribute all their successful
    attempts' tasks.
    """
    by_stage: dict[int, list[float]] = {}
    parents: dict[int, tuple[int, ...]] = {}
    names: dict[int, str] = {}
    for stage in job.stages:
        durations = by_stage.setdefault(stage.stage_id, [])
        for record in stage.tasks:
            if record.succeeded or include_failed_attempts:
                durations.append(record.duration_seconds)
        parents.setdefault(stage.stage_id, stage.parent_stage_ids)
        names.setdefault(stage.stage_id, stage.name)
    known = set(by_stage)
    stages = tuple(
        SimStage(
            stage_id=sid,
            tasks=[SimTask(d) for d in durations],
            # drop dangling parents (e.g. map stages satisfied by reused
            # shuffle output from an earlier job, which never ran here)
            parent_ids=tuple(p for p in parents[sid] if p in known),
            name=names[sid],
        )
        for sid, durations in sorted(by_stage.items())
    )
    total = sum(t.duration for s in stages for t in s.tasks)
    return RecordedJob(job.description, stages, total)


def replay(
    recorded: RecordedJob,
    n_slots: int,
    core_speedup: float = 1.0,
    task_overhead_s: float = 0.0,
    straggler_sigma: float = 0.0,
    seed: int = 0,
) -> SimReport:
    """Replay a recorded job on ``n_slots`` simulated task slots.

    ``core_speedup`` > 1 models faster cores (durations divide by it).
    """
    if core_speedup <= 0:
        raise ValueError("core_speedup must be positive")
    stages = [
        SimStage(
            stage_id=s.stage_id,
            tasks=[SimTask(t.duration / core_speedup) for t in s.tasks],
            parent_ids=s.parent_ids,
            name=s.name,
        )
        for s in recorded.stages
    ]
    simulator = ClusterSimulator(
        n_slots,
        task_overhead_s=task_overhead_s,
        straggler_sigma=straggler_sigma,
        seed=seed,
    )
    return simulator.run(stages)


def what_if_scaling(
    recorded: RecordedJob, slot_counts: list[int], **replay_kwargs
) -> dict[int, float]:
    """Makespan at each hypothetical slot count."""
    return {n: replay(recorded, n, **replay_kwargs).makespan for n in slot_counts}
