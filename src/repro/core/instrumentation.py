"""Driver-path metrics: resampling costs measured, not inferred.

The paper's core economic claim (Monte Carlo resampling amortizes the
scoring pass; permutation pays it per replicate) is a statement about
*per-replicate cost*.  These process-wide instruments record exactly that
from the score/SKAT/resampling driver loops, for both the local and the
distributed engine, so benchmarks and ``sparkscore history --metrics``
report measured numbers.

Series (all labeled ``method`` x ``engine``):

- ``repro_replicates_total`` -- replicates computed;
- ``repro_resampling_batch_seconds`` -- wall time per driver batch (one
  broadcast + pass for MC, one replicate for permutation);
- ``repro_replicate_seconds`` -- amortized wall time per single replicate;
- ``repro_score_pass_seconds`` -- observed-statistics passes (label
  ``engine`` only).
"""

from __future__ import annotations

from repro.obs.registry import REGISTRY

REPLICATES = REGISTRY.counter(
    "repro_replicates_total",
    "resampling replicates computed",
    labelnames=("method", "engine"),
)

BATCH_SECONDS = REGISTRY.histogram(
    "repro_resampling_batch_seconds",
    "wall seconds per resampling driver batch",
    labelnames=("method", "engine"),
)

REPLICATE_SECONDS = REGISTRY.histogram(
    "repro_replicate_seconds",
    "amortized wall seconds per replicate",
    labelnames=("method", "engine"),
)

SCORE_PASS_SECONDS = REGISTRY.histogram(
    "repro_score_pass_seconds",
    "wall seconds per observed-statistics pass",
    labelnames=("engine",),
)

# -- executor-side task instrumentation --------------------------------------
#
# These series are incremented *where the task runs*: directly in the
# driver's registry under serial/threads, and in the worker process's
# registry under the process backend -- from where they ship back with the
# task result as a registry delta and merge into the driver's registry
# (see Registry.collect_delta / merge_delta).  Every backend therefore
# exposes the same series names with consistent totals.

WORKER_TASK_SECONDS = REGISTRY.histogram(
    "repro_worker_task_seconds",
    "task wall seconds measured at the point of execution",
    labelnames=("kind",),
)

WORKER_GC_PAUSE_SECONDS = REGISTRY.counter(
    "repro_worker_gc_pause_seconds_total",
    "GC pause seconds observed at the point of execution",
)


def observe_worker_task(kind: str, seconds: float, gc_pause_seconds: float = 0.0) -> None:
    """Record one executed task attempt from inside the executing process."""
    WORKER_TASK_SECONDS.labels(kind=kind).observe(seconds)
    # inc(0) still materializes the series, keeping name parity across
    # backends even when no collection ran during the task
    WORKER_GC_PAUSE_SECONDS.inc(gc_pause_seconds)


def observe_batch(method: str, engine: str, seconds: float, replicates: int) -> None:
    """Record one resampling batch of ``replicates`` replicates."""
    if replicates <= 0:
        return
    REPLICATES.labels(method=method, engine=engine).inc(replicates)
    BATCH_SECONDS.labels(method=method, engine=engine).observe(seconds)
    REPLICATE_SECONDS.labels(method=method, engine=engine).observe(seconds / replicates)


def mean_replicate_seconds(method: str, engine: str) -> float:
    """Measured mean per-replicate cost so far (0.0 if nothing recorded)."""
    child = REPLICATE_SECONDS.labels(method=method, engine=engine)
    return child.sum / child.count if child.count else 0.0
