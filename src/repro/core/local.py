"""Single-node vectorized reference implementation.

This is the validation oracle for the distributed algorithms (given the
same seed both paths consume identical resampling streams, see
:mod:`repro.stats.resampling.streams`) and the single-node baseline for
the benchmarks.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import instrumentation
from repro.core.results import ResamplingResult
from repro.genomics.synthetic import Dataset
from repro.stats.asymptotic import skat_asymptotic_pvalues
from repro.stats.resampling.montecarlo import MonteCarloResampler
from repro.stats.resampling.permutation import PermutationResampler
from repro.stats.resampling.streams import mc_multiplier_batches, permutation_stream
from repro.stats.score.base import ScoreModel
from repro.stats.score.cox import CoxScoreModel
from repro.stats.skat import skat_statistics


class LocalSparkScore:
    """Pure-NumPy SparkScore: same analyses, no engine.

    The Monte Carlo path keeps the (J, n) contribution matrix resident
    ("caching"); passing ``cache_contributions=False`` recomputes it for
    every batch, mirroring Experiment B's no-cache arm.
    """

    def __init__(self, dataset: Dataset, model: ScoreModel | None = None) -> None:
        self.dataset = dataset
        self.model = model or CoxScoreModel(dataset.phenotype)
        if self.model.n_patients != dataset.n_patients:
            raise ValueError("model patients must match dataset")
        self._G = dataset.genotypes.matrix.astype(np.float64)
        self._weights = dataset.weights
        self._set_ids = dataset.snpsets.set_ids
        self._K = dataset.n_sets

    # -- Algorithm 1 ---------------------------------------------------------

    def observed(self) -> ResamplingResult:
        start = time.perf_counter()
        scores = self.model.scores(self._G)
        stats = skat_statistics(scores, self._weights, self._set_ids, self._K)
        elapsed = time.perf_counter() - start
        return self._result("observed", stats, np.zeros(self._K, dtype=np.int64), 0, elapsed)

    def observed_statistics(self) -> np.ndarray:
        pass_start = time.perf_counter()
        scores = self.model.scores(self._G)
        stats = skat_statistics(scores, self._weights, self._set_ids, self._K)
        instrumentation.SCORE_PASS_SECONDS.labels(engine="local").observe(
            time.perf_counter() - pass_start
        )
        return stats

    def contributions(self) -> np.ndarray:
        """The (J, n) U matrix Algorithm 3 caches."""
        return self.model.contributions(self._G)

    # -- Algorithm 3 (Monte Carlo) ----------------------------------------------

    def monte_carlo(
        self,
        iterations: int,
        seed: int = 0,
        batch_size: int = 64,
        cache_contributions: bool = True,
        monitor=None,
    ) -> ResamplingResult:
        """``monitor`` is an optional
        :class:`~repro.obs.inference.ConvergenceMonitor` (the local engine
        has no context to mint one, so callers wire their own)."""
        start = time.perf_counter()
        used = iterations
        if cache_contributions:
            sampler = MonteCarloResampler(
                self.contributions(), self._weights, self._set_ids, self._K
            )
            outcome = sampler.run(iterations, seed, batch_size, monitor=monitor)
            observed, counts = outcome.observed, outcome.exceed_counts
            used = outcome.n_resamples
            instrumentation.observe_batch(
                "monte_carlo", "local", time.perf_counter() - start, used
            )
        else:
            # no-cache arm: re-derive U from genotypes for every batch,
            # exactly what Spark does when the U RDD is not persisted
            observed = self.observed_statistics()
            counts = np.zeros(self._K, dtype=np.int64)
            used = 0
            n = self.dataset.n_patients
            for z_batch in mc_multiplier_batches(n, iterations, seed, batch_size):
                batch_start = time.perf_counter()
                U = self.model.contributions(self._G)  # recomputed!
                scores = z_batch @ U.T
                stats = skat_statistics(scores, self._weights, self._set_ids, self._K)
                batch_counts = (stats >= observed[None, :]).sum(axis=0)
                width = z_batch.shape[0]
                used += width
                instrumentation.observe_batch(
                    "monte_carlo_nocache", "local",
                    time.perf_counter() - batch_start, width,
                )
                if monitor is None:
                    counts += batch_counts
                else:
                    counts += monitor.fold(batch_counts, width)
                    if monitor.done:
                        break
            if monitor is not None:
                monitor.finish()
        elapsed = time.perf_counter() - start
        return self._result("monte_carlo", observed, counts, used, elapsed, monitor)

    # -- Algorithm 2 (permutation) --------------------------------------------------

    def permutation(self, iterations: int, seed: int = 0, monitor=None) -> ResamplingResult:
        start = time.perf_counter()
        sampler = PermutationResampler(
            self.model, self._G, self._weights, self._set_ids, self._K
        )
        outcome = sampler.run(iterations, seed, monitor=monitor)
        elapsed = time.perf_counter() - start
        instrumentation.observe_batch("permutation", "local", elapsed, outcome.n_resamples)
        return self._result(
            "permutation", outcome.observed, outcome.exceed_counts,
            outcome.n_resamples, elapsed, monitor,
        )

    def permutation_statistics(self, iterations: int, seed: int = 0) -> np.ndarray:
        """(B, K) replicate statistics (diagnostics / QQ plots)."""
        out = np.empty((iterations, self._K))
        for b, perm in enumerate(permutation_stream(self.dataset.n_patients, iterations, seed)):
            scores = self.model.permuted(perm).scores(self._G)
            out[b] = skat_statistics(scores, self._weights, self._set_ids, self._K)
        return out

    # -- asymptotics ----------------------------------------------------------------------

    def asymptotic(self, method: str = "liu") -> ResamplingResult:
        start = time.perf_counter()
        U = self.contributions()
        observed = skat_statistics(U.sum(axis=1), self._weights, self._set_ids, self._K)
        pvals = skat_asymptotic_pvalues(
            U, self._weights, self._set_ids, self._K, observed, method
        )
        elapsed = time.perf_counter() - start
        result = self._result("asymptotic", observed, np.zeros(self._K, dtype=np.int64), 0, elapsed)
        result.explicit_pvalues = pvals
        result.info["approximation"] = method
        return result

    # -- helpers ---------------------------------------------------------------------------

    def _result(
        self,
        method: str,
        observed: np.ndarray,
        counts: np.ndarray,
        iterations: int,
        elapsed: float,
        monitor=None,
    ) -> ResamplingResult:
        info = {"wall_seconds": elapsed, "engine": "local"}
        explicit = None
        if monitor is not None:
            info["early_stop"] = monitor.policy is not None
            info["replicates_planned"] = monitor.planned_replicates
            info["replicates_saved"] = monitor.replicates_saved
            info["sets_converged"] = monitor.sets_converged
            if monitor.masking and not np.all(
                monitor.denominators == monitor.replicates_total
            ):
                explicit = monitor.pvalues("plugin")
        return ResamplingResult(
            method=method,
            set_names=list(self.dataset.snpsets.names),
            set_sizes=self.dataset.snpsets.sizes(),
            observed=observed,
            exceed_counts=counts,
            n_resamples=iterations,
            explicit_pvalues=explicit,
            info=info,
        )
