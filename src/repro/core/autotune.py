"""Auto-tuning (the paper's Experiment C), model-driven and live.

Two complementary tuners:

- :class:`ModelTuner` searches cluster/container configurations using the
  calibrated performance model -- strong scaling over node counts
  (Fig. 6) and container-shape sweeps at fixed hardware (Fig. 7,
  Tables VII/VIII), plus a recommender that picks the cheapest predicted
  configuration.
- :class:`LiveTuner` probes *real* engine runs at reduced scale, sweeping
  partition counts and block sizes, and returns the measured best -- the
  "prototype and evaluate selected auto-tuning capabilities" part of the
  paper, realized against this repo's engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.cluster.nodes import ClusterSpec, emr_cluster
from repro.cluster.yarn import AllocationError, ContainerAllocation, ResourceManager
from repro.core.perfmodel import PredictedRun, SparkScorePerfModel, WorkloadSpec


@dataclass(frozen=True)
class ContainerShape:
    """One point of the Experiment C sweep."""

    num_containers: int
    memory_gib: float
    cores: int

    def __str__(self) -> str:
        return f"{self.num_containers} x ({self.cores} cores, {self.memory_gib:g} GiB)"


#: Tables VII/VIII: 36 nodes, three equal-aggregate-resource shapes.
PAPER_CONTAINER_SHAPES = (
    ContainerShape(42, 10.0, 6),
    ContainerShape(84, 5.0, 3),
    ContainerShape(126, 3.0, 2),
)


class ModelTuner:
    """Configuration search over the calibrated performance model."""

    def __init__(self, model: SparkScorePerfModel | None = None) -> None:
        self.model = model or SparkScorePerfModel()

    def strong_scaling(
        self, workload: WorkloadSpec, node_counts: list[int]
    ) -> dict[int, PredictedRun]:
        """Fixed input, varying cluster size (Fig. 6 / Table VI)."""
        return {n: self.model.predict(workload, emr_cluster(n)) for n in node_counts}

    def sweep_containers(
        self,
        workload: WorkloadSpec,
        cluster: ClusterSpec,
        shapes: tuple[ContainerShape, ...] = PAPER_CONTAINER_SHAPES,
    ) -> dict[ContainerShape, PredictedRun]:
        """Fixed cluster, varying container shape (Fig. 7)."""
        rm = ResourceManager(cluster)
        out: dict[ContainerShape, PredictedRun] = {}
        for shape in shapes:
            allocation = rm.allocate(shape.num_containers, shape.memory_gib, shape.cores)
            out[shape] = self.model.predict(workload, allocation)
        return out

    def feasible_shapes(
        self,
        cluster: ClusterSpec,
        container_counts: list[int],
        memories_gib: list[float],
        cores_options: list[int],
    ) -> list[tuple[ContainerShape, ContainerAllocation]]:
        rm = ResourceManager(cluster)
        out = []
        for count in container_counts:
            for memory in memories_gib:
                for cores in cores_options:
                    try:
                        allocation = rm.allocate(count, memory, cores)
                    except AllocationError:
                        continue
                    out.append((ContainerShape(count, memory, cores), allocation))
        return out

    def recommend(
        self,
        workload: WorkloadSpec,
        cluster: ClusterSpec,
        container_counts: list[int],
        memories_gib: list[float],
        cores_options: list[int],
    ) -> tuple[ContainerShape, PredictedRun]:
        """Cheapest predicted configuration among the feasible grid."""
        candidates = self.feasible_shapes(cluster, container_counts, memories_gib, cores_options)
        if not candidates:
            raise AllocationError("no feasible container shape in the search grid")
        best_shape, best_run = None, None
        for shape, allocation in candidates:
            run = self.model.predict(workload, allocation)
            if best_run is None or run.total_seconds < best_run.total_seconds:
                best_shape, best_run = shape, run
        assert best_shape is not None and best_run is not None
        return best_shape, best_run


@dataclass
class LiveProbe:
    """One measured configuration probe."""

    num_partitions: int
    block_size: int
    wall_seconds: float


class LiveTuner:
    """Measures real engine runs across partition/block-size settings."""

    def __init__(self, dataset, config=None, probe_iterations: int = 20, seed: int = 0) -> None:
        self.dataset = dataset
        self.config = config
        self.probe_iterations = probe_iterations
        self.seed = seed

    def sweep(
        self, partition_options: list[int], block_size_options: list[int]
    ) -> list[LiveProbe]:
        from repro.config import EngineConfig
        from repro.core.algorithms import DistributedSparkScore
        from repro.engine.context import Context

        probes: list[LiveProbe] = []
        for num_partitions in partition_options:
            for block_size in block_size_options:
                config = (self.config or EngineConfig()).copy(
                    default_parallelism=num_partitions
                )
                with Context(config) as ctx:
                    scorer = DistributedSparkScore(
                        ctx,
                        self.dataset,
                        flavor="vectorized",
                        block_size=block_size,
                        num_partitions=num_partitions,
                    )
                    start = time.perf_counter()
                    scorer.monte_carlo(self.probe_iterations, seed=self.seed)
                    probes.append(
                        LiveProbe(num_partitions, block_size, time.perf_counter() - start)
                    )
        return probes

    def best(self, partition_options: list[int], block_size_options: list[int]) -> LiveProbe:
        probes = self.sweep(partition_options, block_size_options)
        return min(probes, key=lambda p: p.wall_seconds)
