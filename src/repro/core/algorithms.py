"""Algorithms 1-3 on the distributed engine.

Two flavors of the same pipeline:

- ``"paper"`` -- record-per-SNP RDDs and an explicit weights *join*,
  transcribing Algorithm 1 step by step (including the filter against the
  union of SNP-sets and the broadcast of the phenotype pairs);
- ``"vectorized"`` -- record-per-block RDDs (:class:`~repro.core.blocks.SnpBlock`)
  with broadcast weights, trading fidelity for NumPy batching.  Both
  produce identical statistics.

Monte Carlo (Algorithm 3) caches the contributions RDD and reuses it for
every replicate batch; permutation (Algorithm 2) re-runs the scoring
pipeline per replicate with a re-broadcast shuffled phenotype.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from repro.core import instrumentation
from repro.core.blocks import SnpBlock, build_blocks
from repro.core.results import ResamplingResult
from repro.genomics.io.formats import parse_genotype_line, parse_weight_line
from repro.genomics.synthetic import Dataset
from repro.stats.resampling.streams import mc_multiplier_batches, permutation_stream
from repro.stats.score.base import ScoreModel
from repro.stats.score.cox import CoxScoreModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.context import Context
    from repro.engine.rdd import RDD

FLAVORS = ("paper", "vectorized")


class DistributedSparkScore:
    """SparkScore's Algorithms 1-3 running on a :class:`Context`.

    Parameters
    ----------
    ctx:
        The engine context (owns executors, shuffle state, caches).
    dataset:
        In-memory dataset; mutually exclusive with ``input_paths``.
    input_paths:
        ``{"genotypes": path, "weights": path}`` text files (local or
        ``hdfs://``) to parse with the engine, plus ``dataset`` supplying
        phenotype/sets/weights metadata for the driver side.  When given,
        genotype records flow through the parse stage exactly as in the
        paper (re-parsed on every uncached recomputation).
    flavor:
        ``"paper"`` or ``"vectorized"`` (see module docstring).
    join_strategy:
        ``"rdd_join"`` joins the weights RDD per the paper; ``"broadcast"``
        ships a weight dict with the tasks instead (paper flavor only).
    """

    def __init__(
        self,
        ctx: "Context",
        dataset: Dataset,
        model: ScoreModel | None = None,
        flavor: str = "vectorized",
        block_size: int = 256,
        num_partitions: int | None = None,
        join_strategy: str = "rdd_join",
        input_paths: dict[str, str] | None = None,
        cache_genotypes: bool = False,
    ) -> None:
        if flavor not in FLAVORS:
            raise ValueError(f"flavor must be one of {FLAVORS}")
        if join_strategy not in ("rdd_join", "broadcast"):
            raise ValueError("join_strategy must be 'rdd_join' or 'broadcast'")
        self.ctx = ctx
        self.dataset = dataset
        self.model = model or CoxScoreModel(dataset.phenotype)
        if self.model.n_patients != dataset.n_patients:
            raise ValueError("model patients must match dataset")
        self.flavor = flavor
        self.block_size = block_size
        self.join_strategy = join_strategy
        self.num_partitions = num_partitions or ctx.config.default_parallelism
        self._K = dataset.n_sets

        snp_ids = dataset.genotypes.snp_ids
        set_map = {int(s): int(k) for s, k in zip(snp_ids, dataset.snpsets.set_ids)}
        w2_map = {int(s): float(w) ** 2 for s, w in zip(snp_ids, dataset.weights)}
        # broadcast the SNP-set mapping and the phenotype pairs (Alg. 1 step 6)
        self._set_map_bc = ctx.broadcast(set_map)
        self._w2_map_bc = ctx.broadcast(w2_map)
        self._union_set_bc = ctx.broadcast(frozenset(set_map))
        self._model_bc = ctx.broadcast(self.model)
        self._pairs_bc = ctx.broadcast(dataset.phenotype.pairs())

        self._gm_rdd = self._build_genotype_rdd(input_paths, cache_genotypes)
        self._weights_rdd = self._build_weights_rdd(input_paths)
        self._u_rdd: "RDD | None" = None
        self._u_cached = False

    # -- input RDDs ------------------------------------------------------------

    def _build_genotype_rdd(
        self, input_paths: dict[str, str] | None, cache_genotypes: bool
    ) -> "RDD":
        ctx = self.ctx
        if input_paths is not None:
            lines = ctx.text_file(input_paths["genotypes"], self.num_partitions)
            rows = lines.map_partitions(
                lambda it: (parse_genotype_line(l) for l in it if l), name="parse_gm"
            )
        else:
            rows = ctx.parallelize(list(self.dataset.genotypes.rows()), self.num_partitions)
            rows.name = "gm_rows"
        # Algorithm 1 step 5: filter against the union of the SNP-sets
        union_bc = self._union_set_bc
        filtered = rows.filter(lambda rec: rec[0] in union_bc.value)
        filtered.name = "fgm"
        if self.flavor == "vectorized":
            set_bc, w2_bc = self._set_map_bc, self._w2_map_bc
            n_sets, block_size = self._K, self.block_size
            filtered = filtered.map_partitions(
                lambda it: build_blocks(it, set_bc.value, w2_bc.value, n_sets, block_size),
                name="gm_blocks",
            )
        if cache_genotypes:
            filtered.cache()
        return filtered

    def _build_weights_rdd(self, input_paths: dict[str, str] | None) -> "RDD | None":
        if self.flavor != "paper" or self.join_strategy != "rdd_join":
            return None
        ctx = self.ctx
        if input_paths is not None and "weights" in input_paths:
            lines = ctx.text_file(input_paths["weights"], self.num_partitions)
            pairs = lines.map_partitions(
                lambda it: (parse_weight_line(l) for l in it if l), name="parse_weights"
            )
            rdd = pairs.map(lambda kv: (kv[0], kv[1] ** 2))
        else:
            records = [
                (int(s), float(w) ** 2)
                for s, w in zip(self.dataset.genotypes.snp_ids, self.dataset.weights)
            ]
            rdd = ctx.parallelize(records, self.num_partitions)
        rdd.name = "weights_sq"
        return rdd

    # -- U RDD (Algorithm 1 step 7) ------------------------------------------------

    def contributions_rdd(self, cache: bool = True) -> "RDD":
        """The per-patient contributions RDD; cached when requested."""
        if self._u_rdd is not None and self._u_cached == cache:
            return self._u_rdd
        model_bc = self._model_bc
        if self.flavor == "paper":
            u = self._gm_rdd.map_values(
                lambda g: model_bc.value.contributions(np.asarray(g, dtype=np.float64))[0]
            )
        else:
            u = self._gm_rdd.map(
                lambda block: SnpBlock(
                    block.snp_ids,
                    block.set_ids,
                    block.weights_sq,
                    model_bc.value.contributions(block.genotypes.astype(np.float64)),
                    block.n_sets,
                )
            )
        u.name = "U"
        if cache:
            u.cache()
        self._u_rdd = u
        self._u_cached = cache
        return u

    def _scores_to_set_stats(self, scored: "RDD", width: int) -> np.ndarray:
        """Steps 8-12: inner sigma -> weight join -> per-set reduction.

        ``scored`` carries per-SNP squared scores: paper flavor records are
        ``(snp_id, value_or_vector)``; vectorized records are per-set
        partial vectors already.  Returns (width, K) statistics.
        """
        K = self._K
        if self.flavor == "vectorized":
            partials = scored.collect()
            total = np.zeros((width, K))
            for partial in partials:
                total += partial
            return total
        if self.join_strategy == "rdd_join":
            joined = scored.join(self._weights_rdd, num_partitions=self.num_partitions)
            snp_scores = joined.map_values(lambda uw: uw[0] * uw[1])
        else:
            w2_bc = self._w2_map_bc
            snp_scores = scored.map(lambda kv: (kv[0], kv[1] * w2_bc.value[kv[0]]))
        set_bc = self._set_map_bc
        per_set = snp_scores.map(lambda kv: (set_bc.value[kv[0]], kv[1])).reduce_by_key(
            lambda a, b: a + b, self.num_partitions
        )
        stats = np.zeros((width, K))
        for set_idx, value in per_set.collect():
            stats[:, set_idx] = value
        return stats

    # -- Algorithm 1: observed statistics ----------------------------------------------

    def observed_statistics(self, cache_contributions: bool = True) -> np.ndarray:
        pass_start = time.perf_counter()
        u = self.contributions_rdd(cache_contributions)
        if self.flavor == "paper":
            inner = u.map_values(lambda row: float(np.sum(row)) ** 2)
            stats = self._scores_to_set_stats(inner, 1)[0]
        else:
            partial = u.map(lambda block: block.skat_partial(block.genotypes.sum(axis=1)))
            stats = self._scores_to_set_stats(partial.map(lambda v: v[None, :]), 1)[0]
        instrumentation.SCORE_PASS_SECONDS.labels(engine="distributed").observe(
            time.perf_counter() - pass_start
        )
        return stats

    def observed(self) -> ResamplingResult:
        start = time.perf_counter()
        stats = self.observed_statistics()
        return self._result("observed", stats, np.zeros(self._K, dtype=np.int64), 0, start)

    # -- Algorithm 3: Monte Carlo -----------------------------------------------------------

    def monte_carlo(
        self,
        iterations: int,
        seed: int = 0,
        batch_size: int = 64,
        cache_contributions: bool = True,
    ) -> ResamplingResult:
        start = time.perf_counter()
        observed = self.observed_statistics(cache_contributions)
        u = self.contributions_rdd(cache_contributions)
        counts = np.zeros(self._K, dtype=np.int64)
        n = self.dataset.n_patients
        for z_batch in mc_multiplier_batches(n, iterations, seed, batch_size):
            batch_start = time.perf_counter()
            z_bc = self.ctx.broadcast(z_batch)
            width = z_batch.shape[0]
            if self.flavor == "paper":
                inner = u.map_values(lambda row: np.square(z_bc.value @ row))
                stats = self._scores_to_set_stats(inner, width)
            else:
                partial = u.map(
                    lambda block: block.skat_partial(z_bc.value @ block.genotypes.T)
                )
                stats = self._scores_to_set_stats(partial, width)
            counts += (stats >= observed[None, :]).sum(axis=0)
            z_bc.destroy()
            instrumentation.observe_batch(
                "monte_carlo", "distributed", time.perf_counter() - batch_start, width
            )
        return self._result("monte_carlo", observed, counts, iterations, start)

    # -- Algorithm 2: permutation ---------------------------------------------------------------

    def permutation(self, iterations: int, seed: int = 0) -> ResamplingResult:
        start = time.perf_counter()
        observed = self.observed_statistics(cache_contributions=False)
        counts = np.zeros(self._K, dtype=np.int64)
        n = self.dataset.n_patients
        for perm in permutation_stream(n, iterations, seed):
            replicate_start = time.perf_counter()
            # re-broadcast the shuffled phenotype pairs (Alg. 2 step 2) and
            # recompute steps 6-12 of Algorithm 1 from the genotype RDD
            permuted_model = self.model.permuted(perm)
            model_bc = self.ctx.broadcast(permuted_model)
            if self.flavor == "paper":
                u = self._gm_rdd.map_values(
                    lambda g: permuted_contributions(model_bc, g)
                )
                inner = u.map_values(lambda row: float(np.sum(row)) ** 2)
                stats = self._scores_to_set_stats(inner, 1)[0]
            else:
                partial = self._gm_rdd.map(
                    lambda block: block.skat_partial(
                        model_bc.value.scores(block.genotypes.astype(np.float64))
                    )
                )
                stats = self._scores_to_set_stats(partial.map(lambda v: v[None, :]), 1)[0]
            counts += (stats >= observed).astype(np.int64)
            model_bc.destroy()
            instrumentation.observe_batch(
                "permutation", "distributed", time.perf_counter() - replicate_start, 1
            )
        return self._result("permutation", observed, counts, iterations, start)

    # -- results -----------------------------------------------------------------------------------

    def _result(
        self,
        method: str,
        observed: np.ndarray,
        counts: np.ndarray,
        iterations: int,
        start: float,
    ) -> ResamplingResult:
        elapsed = time.perf_counter() - start
        jobs = self.ctx.metrics.jobs
        totals = [j.totals() for j in jobs]
        return ResamplingResult(
            method=method,
            set_names=list(self.dataset.snpsets.names),
            set_sizes=self.dataset.snpsets.sizes(),
            observed=observed,
            exceed_counts=counts,
            n_resamples=iterations,
            info={
                "wall_seconds": elapsed,
                "engine": "distributed",
                "flavor": self.flavor,
                "jobs_run": len(jobs),
                "cache_hits": sum(t.cache_hits for t in totals),
                "cache_misses": sum(t.cache_misses for t in totals),
                "shuffle_bytes": sum(t.shuffle_bytes_written for t in totals),
            },
        )


def permuted_contributions(model_bc, genotype_row) -> np.ndarray:
    """Per-row contributions under the broadcast permuted model."""
    return model_bc.value.contributions(np.asarray(genotype_row, dtype=np.float64))[0]
