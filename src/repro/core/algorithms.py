"""Algorithms 1-3 on the distributed engine.

Two flavors of the same pipeline:

- ``"paper"`` -- record-per-SNP RDDs and an explicit weights *join*,
  transcribing Algorithm 1 step by step (including the filter against the
  union of SNP-sets and the broadcast of the phenotype pairs);
- ``"vectorized"`` -- record-per-block RDDs (:class:`~repro.core.blocks.SnpBlock`)
  with broadcast weights, trading fidelity for NumPy batching.  Both
  produce identical statistics.

Monte Carlo (Algorithm 3) caches the contributions RDD and reuses it for
every replicate batch; permutation (Algorithm 2) re-runs the scoring
pipeline per replicate *batch* with a re-broadcast block of shuffled
phenotypes, amortizing DAG-build/scheduling overhead the same way the MC
multiplier batches do.

Every transformation in the hot path is a named module-level callable (not
a lambda), so the whole pipeline pickles and runs on the process backend.
Resampling exceedance counting happens *inside* tasks against a broadcast
of the observed statistics: the driver receives ``(K,)`` int64 counts per
batch instead of per-partition ``(batch, K)`` stat matrices.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from repro.core import instrumentation
from repro.core.blocks import SnpBlock, build_blocks
from repro.core.results import ResamplingResult
from repro.genomics.io.formats import parse_genotype_line, parse_weight_line
from repro.genomics.synthetic import Dataset
from repro.stats.resampling.streams import mc_multiplier_batches, permutation_batches
from repro.stats.score.base import ScoreModel
from repro.stats.score.cox import CoxScoreModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.broadcast import Broadcast
    from repro.engine.context import Context
    from repro.engine.rdd import RDD

FLAVORS = ("paper", "vectorized")


# ---------------------------------------------------------------------------
# named pipeline callables (picklable; lambdas would strand the process
# backend)
# ---------------------------------------------------------------------------


def _add(a, b):
    return a + b


def _first(value):
    return value


def _mul_pair(uw):
    return uw[0] * uw[1]


class _ParseGenotypesFn:
    """Per-partition text parse of genotype lines."""

    def __call__(self, it):
        return (parse_genotype_line(line) for line in it if line)


class _ParseWeightsFn:
    def __call__(self, it):
        return (parse_weight_line(line) for line in it if line)


class _SquareWeightFn:
    def __call__(self, kv):
        return (kv[0], kv[1] ** 2)


class _InUnionFn:
    """Algorithm 1 step 5: keep SNPs in the union of the SNP-sets."""

    def __init__(self, union_bc: "Broadcast") -> None:
        self.union_bc = union_bc

    def __call__(self, rec):
        return rec[0] in self.union_bc.value


class _BuildBlocksFn:
    """Assemble per-SNP records into :class:`SnpBlock` chunks."""

    def __init__(self, set_bc, w2_bc, n_sets: int, block_size: int) -> None:
        self.set_bc = set_bc
        self.w2_bc = w2_bc
        self.n_sets = n_sets
        self.block_size = block_size

    def __call__(self, it):
        return build_blocks(
            it, self.set_bc.value, self.w2_bc.value, self.n_sets, self.block_size
        )


class _RowContributionsFn:
    """Per-SNP contribution row under the broadcast model (paper flavor)."""

    def __init__(self, model_bc) -> None:
        self.model_bc = model_bc

    def __call__(self, g):
        return self.model_bc.value.contributions(np.asarray(g, dtype=np.float64))[0]


class _BlockContributionsFn:
    """Re-block with contributions in place of dosages (vectorized flavor)."""

    def __init__(self, model_bc) -> None:
        self.model_bc = model_bc

    def __call__(self, block: SnpBlock) -> SnpBlock:
        return SnpBlock(
            block.snp_ids,
            block.set_ids,
            block.weights_sq,
            self.model_bc.value.contributions(block.genotypes.astype(np.float64)),
            block.n_sets,
        )


class _RowInnerFn:
    """Observed inner sigma: squared row-sum of a contribution row."""

    def __call__(self, row):
        return float(np.sum(row)) ** 2


class _ObservedBlockPartialFn:
    """Observed per-set partials from a contributions block."""

    def __call__(self, block: SnpBlock):
        return block.skat_partial(block.genotypes.sum(axis=1))


class _McRowInnersFn:
    """(batch,) squared scores of one SNP row under MC multipliers."""

    def __init__(self, z_bc) -> None:
        self.z_bc = z_bc

    def __call__(self, row):
        return np.square(self.z_bc.value @ row)


class _McBlockPartialFn:
    """(batch, K) per-set partials of one block under MC multipliers."""

    def __init__(self, z_bc) -> None:
        self.z_bc = z_bc

    def __call__(self, block: SnpBlock):
        return block.skat_partial(self.z_bc.value @ block.genotypes.T)


class _PermutedRowInnersFn:
    """(batch,) squared score sums of one SNP row under permuted models."""

    def __init__(self, models_bc) -> None:
        self.models_bc = models_bc

    def __call__(self, g):
        g_arr = np.asarray(g, dtype=np.float64)
        return np.array(
            [
                float(np.sum(model.contributions(g_arr)[0])) ** 2
                for model in self.models_bc.value
            ]
        )


class _PermutedBlockPartialsFn:
    """(batch, K) per-set partials of one block under permuted models."""

    def __init__(self, models_bc) -> None:
        self.models_bc = models_bc

    def __call__(self, block: SnpBlock):
        g = block.genotypes.astype(np.float64)
        scores = np.stack([model.scores(g) for model in self.models_bc.value])
        return block.skat_partial_rows(scores)


class _BroadcastWeightFn:
    """Map-side weight application (paper flavor, broadcast join strategy)."""

    def __init__(self, w2_bc) -> None:
        self.w2_bc = w2_bc

    def __call__(self, kv):
        return (kv[0], kv[1] * self.w2_bc.value[kv[0]])


class _KeyBySetFn:
    """Re-key per-SNP scores by SNP-set index (Algorithm 1 step 11)."""

    def __init__(self, set_bc) -> None:
        self.set_bc = set_bc

    def __call__(self, kv):
        return (self.set_bc.value[kv[0]], kv[1])


class _KeyZeroFn:
    """Key every partial under 0 so one reduce task folds them in order."""

    def __call__(self, value):
        return (0, value)


class _MatrixZeroFn:
    """Zero factory for tree-aggregated (width, K) stat matrices."""

    def __init__(self, width: int, n_sets: int) -> None:
        self.width = width
        self.n_sets = n_sets

    def __call__(self):
        return np.zeros((self.width, self.n_sets))


class _ExceedCountsFn:
    """Executor-side exceedance counting: (width, K) stats -> (K,) ints."""

    def __init__(self, observed_bc) -> None:
        self.observed_bc = observed_bc

    def __call__(self, stats):
        return (stats >= self.observed_bc.value[None, :]).sum(axis=0).astype(np.int64)


class _PaperExceedFn:
    """Per-set exceedance count for the paper flavor's keyed totals."""

    def __init__(self, observed_bc) -> None:
        self.observed_bc = observed_bc

    def __call__(self, kv):
        set_idx, values = kv
        exceeded = np.asarray(values) >= self.observed_bc.value[set_idx]
        return (set_idx, int(np.sum(exceeded)))


class DistributedSparkScore:
    """SparkScore's Algorithms 1-3 running on a :class:`Context`.

    Parameters
    ----------
    ctx:
        The engine context (owns executors, shuffle state, caches).
    dataset:
        In-memory dataset; mutually exclusive with ``input_paths``.
    input_paths:
        ``{"genotypes": path, "weights": path}`` text files (local or
        ``hdfs://``) to parse with the engine, plus ``dataset`` supplying
        phenotype/sets/weights metadata for the driver side.  When given,
        genotype records flow through the parse stage exactly as in the
        paper (re-parsed on every uncached recomputation).
    flavor:
        ``"paper"`` or ``"vectorized"`` (see module docstring).
    join_strategy:
        ``"rdd_join"`` joins the weights RDD per the paper; ``"broadcast"``
        ships a weight dict with the tasks instead (paper flavor only).
    """

    def __init__(
        self,
        ctx: "Context",
        dataset: Dataset,
        model: ScoreModel | None = None,
        flavor: str = "vectorized",
        block_size: int = 256,
        num_partitions: int | None = None,
        join_strategy: str = "rdd_join",
        input_paths: dict[str, str] | None = None,
        cache_genotypes: bool = False,
    ) -> None:
        if flavor not in FLAVORS:
            raise ValueError(f"flavor must be one of {FLAVORS}")
        if join_strategy not in ("rdd_join", "broadcast"):
            raise ValueError("join_strategy must be 'rdd_join' or 'broadcast'")
        self.ctx = ctx
        self.dataset = dataset
        self.model = model or CoxScoreModel(dataset.phenotype)
        if self.model.n_patients != dataset.n_patients:
            raise ValueError("model patients must match dataset")
        self.flavor = flavor
        self.block_size = block_size
        self.join_strategy = join_strategy
        self.num_partitions = num_partitions or ctx.config.default_parallelism
        self._K = dataset.n_sets

        snp_ids = dataset.genotypes.snp_ids
        set_map = {int(s): int(k) for s, k in zip(snp_ids, dataset.snpsets.set_ids)}
        w2_map = {int(s): float(w) ** 2 for s, w in zip(snp_ids, dataset.weights)}
        # broadcast the SNP-set mapping and the phenotype pairs (Alg. 1 step 6)
        self._set_map_bc = ctx.broadcast(set_map)
        self._w2_map_bc = ctx.broadcast(w2_map)
        self._union_set_bc = ctx.broadcast(frozenset(set_map))
        self._model_bc = ctx.broadcast(self.model)
        self._pairs_bc = ctx.broadcast(dataset.phenotype.pairs())

        self._gm_rdd = self._build_genotype_rdd(input_paths, cache_genotypes)
        self._weights_rdd = self._build_weights_rdd(input_paths)
        self._u_rdd: "RDD | None" = None
        self._u_cached = False

    # -- input RDDs ------------------------------------------------------------

    def _build_genotype_rdd(
        self, input_paths: dict[str, str] | None, cache_genotypes: bool
    ) -> "RDD":
        ctx = self.ctx
        if input_paths is not None:
            lines = ctx.text_file(input_paths["genotypes"], self.num_partitions)
            rows = lines.map_partitions(_ParseGenotypesFn(), name="parse_gm")
        else:
            rows = ctx.parallelize(list(self.dataset.genotypes.rows()), self.num_partitions)
            rows.name = "gm_rows"
        # Algorithm 1 step 5: filter against the union of the SNP-sets
        filtered = rows.filter(_InUnionFn(self._union_set_bc))
        filtered.name = "fgm"
        if self.flavor == "vectorized":
            filtered = filtered.map_partitions(
                _BuildBlocksFn(
                    self._set_map_bc, self._w2_map_bc, self._K, self.block_size
                ),
                name="gm_blocks",
            )
        if cache_genotypes:
            filtered.cache()
        return filtered

    def _build_weights_rdd(self, input_paths: dict[str, str] | None) -> "RDD | None":
        if self.flavor != "paper" or self.join_strategy != "rdd_join":
            return None
        ctx = self.ctx
        if input_paths is not None and "weights" in input_paths:
            lines = ctx.text_file(input_paths["weights"], self.num_partitions)
            pairs = lines.map_partitions(_ParseWeightsFn(), name="parse_weights")
            rdd = pairs.map(_SquareWeightFn())
        else:
            records = [
                (int(s), float(w) ** 2)
                for s, w in zip(self.dataset.genotypes.snp_ids, self.dataset.weights)
            ]
            rdd = ctx.parallelize(records, self.num_partitions)
        rdd.name = "weights_sq"
        return rdd

    # -- U RDD (Algorithm 1 step 7) ------------------------------------------------

    def contributions_rdd(self, cache: bool = True) -> "RDD":
        """The per-patient contributions RDD; cached when requested."""
        if self._u_rdd is not None and self._u_cached == cache:
            return self._u_rdd
        if self.flavor == "paper":
            u = self._gm_rdd.map_values(_RowContributionsFn(self._model_bc))
        else:
            u = self._gm_rdd.map(_BlockContributionsFn(self._model_bc))
        u.name = "U"
        if cache:
            u.cache()
        self._u_rdd = u
        self._u_cached = cache
        return u

    # -- per-set reductions (Algorithm 1 steps 8-12) ---------------------------------

    def _per_set_scores(self, scored: "RDD") -> "RDD":
        """Weight join + per-set reduction for the paper flavor."""
        if self.join_strategy == "rdd_join":
            joined = scored.join(self._weights_rdd, num_partitions=self.num_partitions)
            snp_scores = joined.map_values(_mul_pair)
        else:
            snp_scores = scored.map(_BroadcastWeightFn(self._w2_map_bc))
        return snp_scores.map(_KeyBySetFn(self._set_map_bc)).reduce_by_key(
            _add, self.num_partitions
        )

    def _scores_to_set_stats(self, scored: "RDD", width: int) -> np.ndarray:
        """Steps 8-12: inner sigma -> weight join -> per-set reduction.

        ``scored`` carries per-SNP squared scores: paper flavor records are
        ``(snp_id, value_or_vector)``; vectorized records are per-set
        partial vectors already.  Returns (width, K) statistics.
        """
        K = self._K
        if self.flavor == "vectorized":
            # executors pre-combine per partition; the driver merges
            # O(sqrt(P)) group partials instead of every block partial
            return scored.tree_aggregate(_MatrixZeroFn(width, K), _add, _add, depth=2)
        stats = np.zeros((width, K))
        for set_idx, value in self._per_set_scores(scored).collect():
            stats[:, set_idx] = value
        return stats

    def _scores_to_counts(
        self, scored: "RDD", width: int, observed_bc: "Broadcast"
    ) -> np.ndarray:
        """Executor-side exceedance counting against the broadcast observed.

        The replicate stat matrix is folded and compared *inside* the
        engine: the vectorized flavor funnels every partition's partials to
        one reduce task (no map-side combine, so the fold order matches a
        driver-side collect exactly), the paper flavor compares per set
        after its keyed reduction.  The driver receives ``(K,)`` int64
        counts -- O(K) bytes per batch instead of O(P * batch * K).
        """
        observed = observed_bc.value
        if self.flavor == "vectorized":
            total = scored.map(_KeyZeroFn()).combine_by_key(
                _first, _add, _add, num_partitions=1, map_side_combine=False
            )
            collected = total.map_values(_ExceedCountsFn(observed_bc)).collect()
            if not collected:
                return np.zeros(self._K, dtype=np.int64)
            return collected[0][1]
        # sets with no SNPs keep the zero statistic of the old dense matrix
        counts = (width * (0.0 >= observed)).astype(np.int64)
        per_set = self._per_set_scores(scored)
        for set_idx, count in per_set.map(_PaperExceedFn(observed_bc)).collect():
            counts[set_idx] = count
        return counts

    # -- Algorithm 1: observed statistics ----------------------------------------------

    def observed_statistics(self, cache_contributions: bool = True) -> np.ndarray:
        pass_start = time.perf_counter()
        u = self.contributions_rdd(cache_contributions)
        if self.flavor == "paper":
            inner = u.map_values(_RowInnerFn())
            stats = self._scores_to_set_stats(inner, 1)[0]
        else:
            partial = u.map(_ObservedBlockPartialFn())
            stats = self._scores_to_set_stats(partial, 1)[0]
        instrumentation.SCORE_PASS_SECONDS.labels(engine="distributed").observe(
            time.perf_counter() - pass_start
        )
        return stats

    def observed(self) -> ResamplingResult:
        start = time.perf_counter()
        stats = self.observed_statistics()
        return self._result("observed", stats, np.zeros(self._K, dtype=np.int64), 0, start)

    # -- Algorithm 3: Monte Carlo -----------------------------------------------------------

    def monte_carlo(
        self,
        iterations: int,
        seed: int = 0,
        batch_size: int = 64,
        cache_contributions: bool = True,
    ) -> ResamplingResult:
        start = time.perf_counter()
        observed = self.observed_statistics(cache_contributions)
        observed_bc = self.ctx.broadcast(observed)
        u = self.contributions_rdd(cache_contributions)
        counts = np.zeros(self._K, dtype=np.int64)
        monitor = self._new_monitor("monte_carlo", iterations)
        used = 0
        n = self.dataset.n_patients
        for z_batch in mc_multiplier_batches(n, iterations, seed, batch_size):
            batch_start = time.perf_counter()
            z_bc = self.ctx.broadcast(z_batch)
            width = z_batch.shape[0]
            if self.flavor == "paper":
                scored = u.map_values(_McRowInnersFn(z_bc))
            else:
                scored = u.map(_McBlockPartialFn(z_bc))
            batch_counts = self._scores_to_counts(scored, width, observed_bc)
            counts += monitor.fold(batch_counts, width)
            used += width
            z_bc.destroy()
            instrumentation.observe_batch(
                "monte_carlo", "distributed", time.perf_counter() - batch_start, width
            )
            self.ctx.inference.publish(monitor)
            if monitor.done:
                break
        monitor.finish()
        self.ctx.inference.publish(monitor, force=True)
        observed_bc.destroy()
        return self._result("monte_carlo", observed, counts, used, start, monitor)

    # -- Algorithm 2: permutation ---------------------------------------------------------------

    def permutation(
        self, iterations: int, seed: int = 0, batch_size: int = 16
    ) -> ResamplingResult:
        start = time.perf_counter()
        observed = self.observed_statistics(cache_contributions=False)
        observed_bc = self.ctx.broadcast(observed)
        counts = np.zeros(self._K, dtype=np.int64)
        monitor = self._new_monitor("permutation", iterations)
        used = 0
        n = self.dataset.n_patients
        for perm_batch in permutation_batches(n, iterations, seed, batch_size):
            batch_start = time.perf_counter()
            # re-broadcast a block of shuffled phenotypes (Alg. 2 step 2) and
            # recompute steps 6-12 of Algorithm 1 once for the whole batch
            models = [self.model.permuted(perm) for perm in perm_batch]
            models_bc = self.ctx.broadcast(models)
            width = len(models)
            if self.flavor == "paper":
                scored = self._gm_rdd.map_values(_PermutedRowInnersFn(models_bc))
            else:
                scored = self._gm_rdd.map(_PermutedBlockPartialsFn(models_bc))
            batch_counts = self._scores_to_counts(scored, width, observed_bc)
            counts += monitor.fold(batch_counts, width)
            used += width
            models_bc.destroy()
            instrumentation.observe_batch(
                "permutation", "distributed", time.perf_counter() - batch_start, width
            )
            self.ctx.inference.publish(monitor)
            if monitor.done:
                break
        monitor.finish()
        self.ctx.inference.publish(monitor, force=True)
        observed_bc.destroy()
        return self._result("permutation", observed, counts, used, start, monitor)

    # -- results -----------------------------------------------------------------------------------

    def _new_monitor(self, method: str, planned: int):
        """Mint a convergence monitor wired to this context's bus/policy."""
        return self.ctx.inference.new_monitor(
            self._K, method, planned, list(self.dataset.snpsets.names)
        )

    def _result(
        self,
        method: str,
        observed: np.ndarray,
        counts: np.ndarray,
        iterations: int,
        start: float,
        monitor=None,
    ) -> ResamplingResult:
        elapsed = time.perf_counter() - start
        jobs = self.ctx.metrics.jobs
        totals = [j.totals() for j in jobs]
        info = {
            "wall_seconds": elapsed,
            "engine": "distributed",
            "flavor": self.flavor,
            "jobs_run": len(jobs),
            "cache_hits": sum(t.cache_hits for t in totals),
            "cache_misses": sum(t.cache_misses for t in totals),
            "shuffle_bytes": sum(t.shuffle_bytes_written for t in totals),
            "driver_bytes_collected": sum(t.driver_bytes_collected for t in totals),
        }
        explicit = None
        if monitor is not None:
            info["early_stop"] = monitor.policy is not None
            info["replicates_planned"] = monitor.planned_replicates
            info["replicates_saved"] = monitor.replicates_saved
            info["sets_converged"] = monitor.sets_converged
            if monitor.masking and not np.all(
                monitor.denominators == monitor.replicates_total
            ):
                # masked sets froze at per-set denominators; the shared
                # n_resamples would misprice them, so ship the monitor's
                # per-set estimates explicitly
                explicit = monitor.pvalues("plugin")
        return ResamplingResult(
            method=method,
            set_names=list(self.dataset.snpsets.names),
            set_sizes=self.dataset.snpsets.sizes(),
            observed=observed,
            exceed_counts=counts,
            n_resamples=iterations,
            explicit_pvalues=explicit,
            info=info,
        )


def permuted_contributions(model_bc, genotype_row) -> np.ndarray:
    """Per-row contributions under the broadcast permuted model."""
    return model_bc.value.contributions(np.asarray(genotype_row, dtype=np.float64))[0]
