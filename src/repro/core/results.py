"""Result containers for SparkScore analyses."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.stats.resampling.pvalues import empirical_pvalues


@dataclass(frozen=True)
class SnpSetResult:
    """Evidence for one SNP-set."""

    name: str
    set_index: int
    n_snps: int
    observed: float
    exceed_count: int
    n_resamples: int
    pvalue: float

    def __str__(self) -> str:
        return (
            f"{self.name}: S={self.observed:.4g}, p={self.pvalue:.4g} "
            f"({self.exceed_count}/{self.n_resamples} resamples >= observed, "
            f"{self.n_snps} SNPs)"
        )


@dataclass
class ResamplingResult:
    """Full analysis output: per-set statistics, counts, and p-values.

    ``method`` records how the sampling distribution was estimated:
    ``"monte_carlo"``, ``"permutation"``, ``"asymptotic"``, or
    ``"observed"`` (statistics only, no inference).
    """

    method: str
    set_names: list[str]
    set_sizes: np.ndarray
    observed: np.ndarray  # (K,) S_k^0
    exceed_counts: np.ndarray  # (K,) resampling exceedances (0s if none run)
    n_resamples: int
    pvalue_method: str = "plugin"
    #: precomputed p-values (asymptotic methods); None => empirical
    explicit_pvalues: np.ndarray | None = None
    #: free-form run metadata (timings, engine counters)
    info: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.observed = np.asarray(self.observed, dtype=np.float64)
        self.exceed_counts = np.asarray(self.exceed_counts, dtype=np.int64)
        K = len(self.set_names)
        if self.observed.shape != (K,) or self.exceed_counts.shape != (K,):
            raise ValueError("observed/exceed_counts must have one entry per set")
        self.set_sizes = np.asarray(self.set_sizes, dtype=np.int64)
        if self.set_sizes.shape != (K,):
            raise ValueError("set_sizes must have one entry per set")

    @property
    def n_sets(self) -> int:
        return len(self.set_names)

    def pvalues(self) -> np.ndarray:
        if self.explicit_pvalues is not None:
            return self.explicit_pvalues
        if self.n_resamples == 0:
            return np.full(self.n_sets, np.nan)
        return empirical_pvalues(self.exceed_counts, self.n_resamples, self.pvalue_method)

    def __getitem__(self, k: int) -> SnpSetResult:
        return SnpSetResult(
            name=self.set_names[k],
            set_index=k,
            n_snps=int(self.set_sizes[k]),
            observed=float(self.observed[k]),
            exceed_count=int(self.exceed_counts[k]),
            n_resamples=self.n_resamples,
            pvalue=float(self.pvalues()[k]),
        )

    def top(self, k: int = 10) -> list[SnpSetResult]:
        """The k most significant sets (ties broken by larger statistic)."""
        p = self.pvalues()
        order = np.lexsort((-self.observed, p))
        return [self[int(i)] for i in order[:k]]

    def to_table(self, max_rows: int | None = None) -> str:
        """Plain-text report, most significant sets first."""
        rows = self.top(self.n_sets if max_rows is None else max_rows)
        header = f"{'set':<16}{'n_snps':>8}{'S_k':>14}{'count':>8}{'p':>12}"
        lines = [f"# method={self.method}, resamples={self.n_resamples}", header, "-" * len(header)]
        for r in rows:
            lines.append(
                f"{r.name:<16}{r.n_snps:>8}{r.observed:>14.5g}{r.exceed_count:>8}{r.pvalue:>12.4g}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ResamplingResult(method={self.method!r}, sets={self.n_sets}, "
            f"resamples={self.n_resamples})"
        )
