"""SNP block records for the vectorized algorithm flavor.

The paper's Algorithm 1 keys every RDD record by a single SNP.  That is
faithful but pays per-record overhead for every genotype row; the
``"vectorized"`` flavor instead carries *blocks* of SNP rows per record so
each map task is a handful of NumPy kernel calls.  A block carries its
members' weights and set assignments, resolved once at construction, plus a
cached sparse membership matrix for set aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

import numpy as np
from scipy import sparse


@dataclass
class SnpBlock:
    """A chunk of SNP rows with pre-resolved weights and set assignments."""

    snp_ids: np.ndarray  # (m,) SNP identifiers
    set_ids: np.ndarray  # (m,) SNP-set index per row
    weights_sq: np.ndarray  # (m,) omega_j^2 per row
    genotypes: np.ndarray  # (m, n) dosages (any numeric dtype)
    n_sets: int
    _membership: sparse.csr_matrix | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        m = self.genotypes.shape[0]
        if not (self.snp_ids.shape == self.set_ids.shape == self.weights_sq.shape == (m,)):
            raise ValueError("block arrays must align with genotype rows")

    @property
    def n_snps(self) -> int:
        return self.genotypes.shape[0]

    def membership(self) -> sparse.csr_matrix:
        """(K, m) indicator matrix, built lazily and cached on the block."""
        if self._membership is None:
            m = self.n_snps
            self._membership = sparse.csr_matrix(
                (np.ones(m), (self.set_ids, np.arange(m))), shape=(self.n_sets, m)
            )
        return self._membership

    def aggregate_per_snp(self, per_snp: np.ndarray) -> np.ndarray:
        """Sum per-SNP values into per-set partials.

        ``per_snp`` is ``(m,)`` or ``(b, m)``; returns ``(K,)`` or ``(b, K)``.
        """
        if per_snp.ndim == 1:
            return np.bincount(self.set_ids, weights=per_snp, minlength=self.n_sets)
        return np.asarray(per_snp @ self.membership().T)

    def skat_partial(self, scores: np.ndarray) -> np.ndarray:
        """Per-set SKAT partials from marginal scores for this block's SNPs."""
        return self.aggregate_per_snp(self.weights_sq * np.square(scores))

    def skat_partial_rows(self, score_rows: np.ndarray) -> np.ndarray:
        """(b, K) partials, one bincount pass per replicate row.

        Batched replicates must go row-by-row through the 1-D
        ``skat_partial`` path: the 2-D sparse-matmul path associates the
        per-set additions differently, so a batched replicate would not be
        bit-identical to the same replicate computed unbatched.
        """
        rows = np.atleast_2d(score_rows)
        return np.stack([self.skat_partial(row) for row in rows])


def build_blocks(
    rows: Iterable[tuple[int, np.ndarray]],
    set_map: Mapping[int, int],
    weight_sq_map: Mapping[int, float],
    n_sets: int,
    block_size: int,
) -> Iterator[SnpBlock]:
    """Assemble per-SNP (id, vector) records into :class:`SnpBlock` chunks.

    Records whose SNP id is absent from ``set_map`` are dropped -- this is
    Algorithm 1's filter against the union of the SNP-sets.
    """
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    ids: list[int] = []
    vectors: list[np.ndarray] = []
    for snp_id, vector in rows:
        if snp_id not in set_map:
            continue
        ids.append(snp_id)
        vectors.append(vector)
        if len(ids) >= block_size:
            yield _finish_block(ids, vectors, set_map, weight_sq_map, n_sets)
            ids, vectors = [], []
    if ids:
        yield _finish_block(ids, vectors, set_map, weight_sq_map, n_sets)


def _finish_block(
    ids: list[int],
    vectors: list[np.ndarray],
    set_map: Mapping[int, int],
    weight_sq_map: Mapping[int, float],
    n_sets: int,
) -> SnpBlock:
    snp_ids = np.asarray(ids, dtype=np.int64)
    return SnpBlock(
        snp_ids=snp_ids,
        set_ids=np.array([set_map[i] for i in ids], dtype=np.int64),
        weights_sq=np.array([weight_sq_map[i] for i in ids], dtype=np.float64),
        genotypes=np.vstack(vectors),
        n_sets=n_sets,
    )
